#include "verifier/version_order.h"

#include <algorithm>

#include "verifier/state_serde.h"

namespace leopard {

VersionOrderIndex::InstallResult VersionOrderIndex::Install(
    Key key, Value value, TxnId writer, TimeInterval install) {
  auto& list = map_[key];
  VersionEntry entry;
  entry.value = value;
  entry.writer = writer;
  entry.install = install;
  // Traces are dispatched in ts_bef order so installs almost always append;
  // keep the list sorted by install.aft with a tail insertion sort.
  auto pos = list.end();
  while (pos != list.begin() && std::prev(pos)->install.aft > install.aft) {
    --pos;
  }
  InstallResult result;
  if (pos == list.end() && !list.empty() &&
      CertainlyBefore(list.back().install, install)) {
    result.certain_prev = list.size() - 1;
  }
  result.index = static_cast<size_t>(pos - list.begin());
  size_t cap_before = list.capacity();
  list.insert(pos, std::move(entry));
  list_heap_bytes_ += (list.capacity() - cap_before) * sizeof(VersionEntry);
  // The key just became prunable (>= 2 versions): register it as a sweep
  // candidate. try_emplace dedups the rare re-entry race with RemoveAborted.
  if (list.size() == 2) multi_version_.try_emplace(key);
  return result;
}

std::vector<VersionEntry>* VersionOrderIndex::Get(Key key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const std::vector<VersionEntry>* VersionOrderIndex::Get(Key key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

CandidateSet VersionOrderIndex::Candidates(Key key,
                                           TimeInterval snapshot) const {
  CandidateSet out;
  const auto* list = Get(key);
  if (list == nullptr || list->empty()) return out;

  // Visibility is commit-based: a version can be seen by this snapshot only
  // if its writer *committed* before the snapshot point, which is possible
  // iff writer_commit.bef < snapshot.aft. Versions of still-active or
  // aborted writers are invisible. (The paper's Fig. 6 categories classify
  // by installation interval; when a transaction runs long, its install
  // interval precedes its commit, so we pick the pivot — the version
  // certainly visible at the snapshot — by commit certainty, and use the
  // installation order only to rule versions certainly *overwritten* before
  // the pivot as garbage. This keeps Theorem 2's minimality argument while
  // never misclassifying a legitimately-visible version.)
  size_t pivot = list->size();  // sentinel: no pivot
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;
    if (v.writer_commit.aft < snapshot.bef) pivot = i;
  }
  const TimeInterval* pivot_install =
      pivot == list->size() ? nullptr : &(*list)[pivot].install;
  out.has_pivot = pivot_install != nullptr;
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;  // invisible
    // Future version: the writer cannot have committed before the snapshot.
    if (!PossiblyBefore(v.writer_commit, snapshot)) continue;
    // Garbage version: certainly installed before the pivot version, which
    // itself was certainly visible — so this one was already overwritten.
    if (pivot_install != nullptr && i < pivot &&
        v.install.aft < pivot_install->bef) {
      continue;
    }
    out.indices.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

CandidateSet VersionOrderIndex::CandidatesRelaxed(
    Key key, TimeInterval snapshot) const {
  CandidateSet out;
  const auto* list = Get(key);
  if (list == nullptr || list->empty()) return out;
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;
    if (!PossiblyBefore(v.writer_commit, snapshot)) continue;  // future
    out.indices.push_back(static_cast<uint32_t>(i));
    if (CertainlyBefore(v.writer_commit, snapshot)) out.has_pivot = true;
  }
  return out;
}

std::vector<TxnId> VersionOrderIndex::RemoveAborted(Key key, TxnId writer) {
  std::vector<TxnId> dirty_readers;
  auto* list = Get(key);
  if (list == nullptr) return dirty_readers;
  for (auto it = list->begin(); it != list->end();) {
    if (it->writer == writer) {
      for (TxnId r : it->readers) {
        if (r != writer) dirty_readers.push_back(r);
      }
      it = list->erase(it);
    } else {
      ++it;
    }
  }
  if (list->empty()) {
    list_heap_bytes_ -= list->capacity() * sizeof(VersionEntry);
    map_.erase(key);
  }
  return dirty_readers;
}

size_t VersionOrderIndex::Prune(Timestamp safe_ts) {
  size_t removed = 0;
  // Sweep only the multi-version candidates — a single-version key has no
  // version before its pivot, so it can never lose anything to a prune.
  // Erasing from an open-addressing table shifts entries backwards, which
  // would make erase-while-iterating revisit or skip slots; keys that
  // settled back to <= 1 version are collected in a reused scratch list and
  // dropped from the candidate set after the sweep.
  prune_scratch_.clear();
  for (const auto& cand : multi_version_) {
    auto mit = map_.find(cand.first);
    if (mit == map_.end()) {
      prune_scratch_.push_back(cand.first);
      continue;
    }
    auto& list = mit->second;
    // Pivot w.r.t. every future snapshot (whose bef >= safe_ts): the last
    // version whose commit certainly precedes safe_ts. Anything certainly
    // installed before that pivot is garbage for every future snapshot —
    // removable once its own commit also precedes safe_ts (so no pending
    // FUW pair can involve it).
    size_t pivot = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].status == WriterStatus::kCommitted &&
          list[i].writer_commit.aft < safe_ts) {
        pivot = i;
      }
    }
    if (pivot != list.size() && pivot != 0) {
      const TimeInterval pv = list[pivot].install;
      size_t erase_end = 0;
      while (erase_end < pivot &&
             list[erase_end].install.aft < pv.bef &&
             list[erase_end].status == WriterStatus::kCommitted &&
             list[erase_end].writer_commit.aft < safe_ts) {
        ++erase_end;
      }
      if (erase_end > 0) {
        list.erase(list.begin(), list.begin() + erase_end);
        removed += erase_end;
      }
    }
    // The pivot always survives, so the list never empties here; a key that
    // settled to a single version stops being a sweep candidate.
    if (list.size() <= 1) prune_scratch_.push_back(cand.first);
  }
  for (Key settled : prune_scratch_) multi_version_.erase(settled);
  return removed;
}

bool VersionOrderIndex::ExtractKey(Key key, std::vector<VersionEntry>& out) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  out = std::move(it->second);
  list_heap_bytes_ -= out.capacity() * sizeof(VersionEntry);
  map_.erase(key);
  multi_version_.erase(key);
  return true;
}

void VersionOrderIndex::InstallKey(Key key, std::vector<VersionEntry> list) {
  if (list.empty()) return;
  list_heap_bytes_ += list.capacity() * sizeof(VersionEntry);
  const size_t n = list.size();
  map_[key] = std::move(list);
  if (n >= 2) multi_version_.try_emplace(key);
}

void VersionOrderIndex::SaveState(StateWriter& w) const {
  w.PutU32(static_cast<uint32_t>(map_.size()));
  for (const auto& [key, list] : map_) {
    w.PutU64(key);
    w.PutU32(static_cast<uint32_t>(list.size()));
    for (const VersionEntry& v : list) {
      w.PutU64(v.value);
      w.PutU64(v.writer);
      serde::SaveInterval(w, v.install);
      w.PutU8(static_cast<uint8_t>(v.status));
      serde::SaveInterval(w, v.writer_snapshot);
      serde::SaveInterval(w, v.writer_commit);
      w.PutU8(static_cast<uint8_t>(v.writer_il));
      serde::SaveIdVector(w, v.readers);
    }
  }
}

Status VersionOrderIndex::LoadState(StateReader& r) {
  map_.clear();
  multi_version_.clear();
  list_heap_bytes_ = 0;
  uint32_t n_keys = 0;
  Status s = r.GetU32(n_keys);
  if (!s.ok()) return s;
  if (!r.CountFits(n_keys, 12)) {
    return Status::InvalidArgument("version order: absurd key count");
  }
  map_.reserve(n_keys);
  for (uint32_t k = 0; k < n_keys; ++k) {
    Key key = 0;
    uint32_t n_versions = 0;
    if (!(s = r.GetU64(key)).ok()) return s;
    if (!(s = r.GetU32(n_versions)).ok()) return s;
    if (!r.CountFits(n_versions, 8 + 8 + 16 + 1 + 16 + 16 + 1 + 4)) {
      return Status::InvalidArgument("version order: absurd version count");
    }
    auto& list = map_[key];
    list.reserve(n_versions);
    for (uint32_t i = 0; i < n_versions; ++i) {
      VersionEntry v;
      uint8_t status = 0;
      if (!(s = r.GetU64(v.value)).ok()) return s;
      if (!(s = r.GetU64(v.writer)).ok()) return s;
      if (!(s = serde::LoadInterval(r, v.install)).ok()) return s;
      if (!(s = r.GetU8(status)).ok()) return s;
      if (status > static_cast<uint8_t>(WriterStatus::kAborted)) {
        return Status::InvalidArgument("version order: bad writer status");
      }
      v.status = static_cast<WriterStatus>(status);
      if (!(s = serde::LoadInterval(r, v.writer_snapshot)).ok()) return s;
      if (!(s = serde::LoadInterval(r, v.writer_commit)).ok()) return s;
      uint8_t il = 0;
      if (!(s = r.GetU8(il)).ok()) return s;
      if (il > static_cast<uint8_t>(IsolationLevel::kSerializable)) {
        return Status::InvalidArgument("version order: bad isolation level");
      }
      v.writer_il = static_cast<IsolationLevel>(il);
      if (!(s = serde::LoadIdVector(r, v.readers)).ok()) return s;
      list.push_back(std::move(v));
    }
    list_heap_bytes_ += list.capacity() * sizeof(VersionEntry);
    if (list.size() >= 2) multi_version_.try_emplace(key);
  }
  return Status::Ok();
}

size_t VersionOrderIndex::VersionCount() const {
  size_t n = 0;
  for (const auto& [k, list] : map_) n += list.size();
  return n;
}

size_t VersionOrderIndex::ApproxBytes() const {
  // O(1): table arrays plus the incrementally tracked list capacities. The
  // rare spilled readers SmallVector (> 2 readers of one version) is the
  // one allocation not counted — memory samples are taken every few
  // thousand traces, and a full-table walk per sample dominated TPC-C
  // verification before this was made constant-time.
  return map_.MemoryBytes() + multi_version_.MemoryBytes() + list_heap_bytes_;
}

}  // namespace leopard
