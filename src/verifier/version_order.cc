#include "verifier/version_order.h"

#include <algorithm>

namespace leopard {

VersionOrderIndex::InstallResult VersionOrderIndex::Install(
    Key key, Value value, TxnId writer, TimeInterval install) {
  auto& list = map_[key];
  VersionEntry entry;
  entry.value = value;
  entry.writer = writer;
  entry.install = install;
  // Traces are dispatched in ts_bef order so installs almost always append;
  // keep the list sorted by install.aft with a tail insertion sort.
  auto pos = list.end();
  while (pos != list.begin() && std::prev(pos)->install.aft > install.aft) {
    --pos;
  }
  InstallResult result;
  if (pos == list.end() && !list.empty() &&
      CertainlyBefore(list.back().install, install)) {
    result.certain_prev = list.size() - 1;
  }
  result.index = static_cast<size_t>(pos - list.begin());
  list.insert(pos, std::move(entry));
  return result;
}

std::vector<VersionEntry>* VersionOrderIndex::Get(Key key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const std::vector<VersionEntry>* VersionOrderIndex::Get(Key key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

CandidateSet VersionOrderIndex::Candidates(Key key,
                                           TimeInterval snapshot) const {
  CandidateSet out;
  const auto* list = Get(key);
  if (list == nullptr || list->empty()) return out;

  // Visibility is commit-based: a version can be seen by this snapshot only
  // if its writer *committed* before the snapshot point, which is possible
  // iff writer_commit.bef < snapshot.aft. Versions of still-active or
  // aborted writers are invisible. (The paper's Fig. 6 categories classify
  // by installation interval; when a transaction runs long, its install
  // interval precedes its commit, so we pick the pivot — the version
  // certainly visible at the snapshot — by commit certainty, and use the
  // installation order only to rule versions certainly *overwritten* before
  // the pivot as garbage. This keeps Theorem 2's minimality argument while
  // never misclassifying a legitimately-visible version.)
  size_t pivot = list->size();  // sentinel: no pivot
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;
    if (v.writer_commit.aft < snapshot.bef) pivot = i;
  }
  const TimeInterval* pivot_install =
      pivot == list->size() ? nullptr : &(*list)[pivot].install;
  out.has_pivot = pivot_install != nullptr;
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;  // invisible
    // Future version: the writer cannot have committed before the snapshot.
    if (!PossiblyBefore(v.writer_commit, snapshot)) continue;
    // Garbage version: certainly installed before the pivot version, which
    // itself was certainly visible — so this one was already overwritten.
    if (pivot_install != nullptr && i < pivot &&
        v.install.aft < pivot_install->bef) {
      continue;
    }
    out.indices.push_back(i);
  }
  return out;
}

CandidateSet VersionOrderIndex::CandidatesRelaxed(
    Key key, TimeInterval snapshot) const {
  CandidateSet out;
  const auto* list = Get(key);
  if (list == nullptr || list->empty()) return out;
  for (size_t i = 0; i < list->size(); ++i) {
    const VersionEntry& v = (*list)[i];
    if (v.status != WriterStatus::kCommitted) continue;
    if (!PossiblyBefore(v.writer_commit, snapshot)) continue;  // future
    out.indices.push_back(i);
    if (CertainlyBefore(v.writer_commit, snapshot)) out.has_pivot = true;
  }
  return out;
}

std::vector<TxnId> VersionOrderIndex::RemoveAborted(Key key, TxnId writer) {
  std::vector<TxnId> dirty_readers;
  auto* list = Get(key);
  if (list == nullptr) return dirty_readers;
  for (auto it = list->begin(); it != list->end();) {
    if (it->writer == writer) {
      for (TxnId r : it->readers) {
        if (r != writer) dirty_readers.push_back(r);
      }
      it = list->erase(it);
    } else {
      ++it;
    }
  }
  return dirty_readers;
}

size_t VersionOrderIndex::Prune(Timestamp safe_ts) {
  size_t removed = 0;
  for (auto mit = map_.begin(); mit != map_.end();) {
    auto& list = mit->second;
    // Pivot w.r.t. every future snapshot (whose bef >= safe_ts): the last
    // version whose commit certainly precedes safe_ts. Anything certainly
    // installed before that pivot is garbage for every future snapshot —
    // removable once its own commit also precedes safe_ts (so no pending
    // FUW pair can involve it).
    size_t pivot = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].status == WriterStatus::kCommitted &&
          list[i].writer_commit.aft < safe_ts) {
        pivot = i;
      }
    }
    if (pivot == list.size() || pivot == 0) {
      ++mit;
      continue;
    }
    const TimeInterval pv = list[pivot].install;
    size_t erase_end = 0;
    while (erase_end < pivot &&
           list[erase_end].install.aft < pv.bef &&
           list[erase_end].status == WriterStatus::kCommitted &&
           list[erase_end].writer_commit.aft < safe_ts) {
      ++erase_end;
    }
    if (erase_end > 0) {
      list.erase(list.begin(), list.begin() + erase_end);
      removed += erase_end;
    }
    if (list.empty()) {
      mit = map_.erase(mit);
    } else {
      ++mit;
    }
  }
  return removed;
}

size_t VersionOrderIndex::VersionCount() const {
  size_t n = 0;
  for (const auto& [k, list] : map_) n += list.size();
  return n;
}

size_t VersionOrderIndex::ApproxBytes() const {
  size_t bytes = map_.size() * (sizeof(Key) + sizeof(void*) * 2);
  for (const auto& [k, list] : map_) {
    bytes += list.capacity() * sizeof(VersionEntry);
    for (const auto& v : list) bytes += v.readers.capacity() * sizeof(TxnId);
  }
  return bytes;
}

}  // namespace leopard
