#include "verifier/bug.h"

#include <sstream>

namespace leopard {

const char* BugTypeName(BugType type) {
  switch (type) {
    case BugType::kCrViolation:
      return "CR_VIOLATION";
    case BugType::kMeViolation:
      return "ME_VIOLATION";
    case BugType::kFuwViolation:
      return "FUW_VIOLATION";
    case BugType::kScViolation:
      return "SC_VIOLATION";
  }
  return "UNKNOWN";
}

std::string BugDescriptor::ToString() const {
  std::ostringstream os;
  os << BugTypeName(type) << " key=" << key << " txns=[";
  for (size_t i = 0; i < txns.size(); ++i) {
    if (i) os << ",";
    os << txns[i];
  }
  os << "] " << detail;
  return os.str();
}

}  // namespace leopard
