#include "verifier/bug.h"

#include <sstream>

namespace leopard {

const char* BugTypeName(BugType type) {
  switch (type) {
    case BugType::kCrViolation:
      return "CR_VIOLATION";
    case BugType::kMeViolation:
      return "ME_VIOLATION";
    case BugType::kFuwViolation:
      return "FUW_VIOLATION";
    case BugType::kScViolation:
      return "SC_VIOLATION";
  }
  return "UNKNOWN";
}

std::string BugDescriptor::ToString() const {
  std::ostringstream os;
  os << BugTypeName(type) << " key=" << key << " txns=[";
  for (size_t i = 0; i < txns.size(); ++i) {
    if (i) os << ",";
    os << txns[i];
  }
  os << "] " << detail;
  for (size_t i = 0; i < ops.size(); ++i) {
    os << (i == 0 ? " ops{" : "; ");
    const BugOp& op = ops[i];
    os << "t" << op.txn << " " << op.role;
    if (op.has_value) os << " key=" << op.key << " val=" << op.value;
    os << " [" << op.interval.bef << "," << op.interval.aft << "] "
       << (op.committed ? "committed" : "uncommitted");
    if (i + 1 == ops.size()) os << "}";
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    os << (i == 0 ? " edges{" : ", ");
    os << "t" << edges[i].from << "-" << DepTypeName(edges[i].type) << "->t"
       << edges[i].to;
    if (i + 1 == edges.size()) os << "}";
  }
  return os.str();
}

}  // namespace leopard
