#include "verifier/mechanism_table.h"

namespace leopard {

namespace {

std::vector<MechanismRow> BuildTable() {
  using IL = IsolationLevel;
  using CM = CertifierMode;
  auto row = [](std::string dbms, std::string cc, IL il, bool me, bool cr,
                bool fuw, bool sc, CM certifier) {
    MechanismRow r;
    r.dbms = std::move(dbms);
    r.concurrency_control = std::move(cc);
    r.isolation = il;
    r.me = me;
    r.cr = cr;
    r.fuw = fuw;
    r.sc = sc;
    r.certifier = certifier;
    return r;
  };
  // Fig. 1 of the paper, one row per (DBMS, IL).
  return {
      // PostgreSQL / OpenGauss: 2PL+MVCC+SSI.
      row("PostgreSQL", "2PL+MVCC+SSI", IL::kSerializable, true, true, true,
          true, CM::kSsi),
      row("PostgreSQL", "2PL+MVCC+SSI", IL::kSnapshotIsolation, true, true,
          true, false, CM::kCycle),
      row("PostgreSQL", "2PL+MVCC+SSI", IL::kReadCommitted, true, true,
          false, false, CM::kCycle),
      row("OpenGauss", "2PL+MVCC+SSI", IL::kSerializable, true, true, true,
          true, CM::kSsi),
      row("OpenGauss", "2PL+MVCC+SSI", IL::kSnapshotIsolation, true, true,
          true, false, CM::kCycle),
      row("OpenGauss", "2PL+MVCC+SSI", IL::kReadCommitted, true, true, false,
          false, CM::kCycle),
      // InnoDB family: 2PL+MVCC at SR/RR/RC.
      row("InnoDB", "2PL+MVCC", IL::kSerializable, true, true, false, false,
          CM::kCycle),
      row("InnoDB", "2PL+MVCC", IL::kRepeatableRead, true, true, false,
          false, CM::kCycle),
      row("InnoDB", "2PL+MVCC", IL::kReadCommitted, true, true, false, false,
          CM::kCycle),
      row("Aurora", "2PL+MVCC", IL::kSerializable, true, true, false, false,
          CM::kCycle),
      row("PolarDB", "2PL+MVCC", IL::kSerializable, true, true, false, false,
          CM::kCycle),
      row("SQLServer", "2PL+MVCC", IL::kSerializable, true, true, false,
          false, CM::kCycle),
      // TiDB.
      row("TiDB", "2PL+MVCC", IL::kRepeatableRead, true, true, false, false,
          CM::kCycle),
      row("TiDB", "2PL+MVCC", IL::kReadCommitted, true, true, false, false,
          CM::kCycle),
      row("TiDB", "Percolator", IL::kSnapshotIsolation, false, true, false,
          true, CM::kCommitOrder),
      // RocksDB.
      row("RocksDB", "2PL+MVCC", IL::kSerializable, true, true, false, false,
          CM::kCycle),
      row("RocksDB", "OCC+MVCC", IL::kSerializable, false, true, false, true,
          CM::kCommitOrder),
      // SQLite: pure 2PL, single version.
      row("SQLite", "2PL", IL::kSerializable, true, false, false, false,
          CM::kCycle),
      // FoundationDB.
      row("FoundationDB", "OCC+MVCC", IL::kSerializable, false, true, false,
          true, CM::kCommitOrder),
      // SingleStore.
      row("SingleStore", "2PL+MVCC", IL::kReadCommitted, true, true, false,
          false, CM::kCycle),
      // CockroachDB.
      row("CockroachDB", "TO+MVCC", IL::kSerializable, false, true, false,
          true, CM::kTsOrder),
      // Spanner.
      row("Spanner", "2PL+MVCC", IL::kSerializable, true, true, false, false,
          CM::kCycle),
      // YugabyteDB.
      row("YugabyteDB", "2PL+MVCC", IL::kSerializable, true, true, true,
          true, CM::kSsi),
      row("YugabyteDB", "2PL+MVCC", IL::kRepeatableRead, true, true, true,
          true, CM::kSsi),
      row("YugabyteDB", "2PL+MVCC", IL::kReadCommitted, true, true, true,
          true, CM::kSsi),
      // Oracle / NuoDB / SAP HANA: SI via first-updater-wins.
      row("Oracle", "2PL+MVCC", IL::kSnapshotIsolation, true, true, true,
          false, CM::kCycle),
      row("Oracle", "2PL+MVCC", IL::kReadCommitted, true, true, false, false,
          CM::kCycle),
      row("NuoDB", "2PL+MVCC", IL::kSnapshotIsolation, true, true, true,
          false, CM::kCycle),
      row("NuoDB", "2PL+MVCC", IL::kReadCommitted, true, true, false, false,
          CM::kCycle),
      row("SAPHANA", "2PL+MVCC", IL::kSnapshotIsolation, true, true, true,
          false, CM::kCycle),
      row("SAPHANA", "2PL+MVCC", IL::kReadCommitted, true, true, false,
          false, CM::kCycle),
  };
}

}  // namespace

const std::vector<MechanismRow>& MechanismTable() {
  static const std::vector<MechanismRow>& table =
      *new std::vector<MechanismRow>(BuildTable());
  return table;
}

std::optional<MechanismRow> FindMechanismRow(const std::string& dbms,
                                             IsolationLevel isolation) {
  for (const auto& row : MechanismTable()) {
    if (row.dbms == dbms && row.isolation == isolation) return row;
  }
  return std::nullopt;
}

VerifierConfig ConfigFromRow(const MechanismRow& row) {
  VerifierConfig config;
  config.check_me = row.me;
  config.check_cr = row.cr;
  config.check_fuw = row.fuw;
  config.check_sc = row.sc;
  config.statement_level_cr =
      row.isolation == IsolationLevel::kReadCommitted;
  config.locking_reads = !row.cr;  // single-version 2PL reads under S locks
  // 2PL+MVCC SERIALIZABLE without a certifier (InnoDB, Aurora, PolarDB,
  // SQL Server, Spanner, RocksDB-2PL): the engine serializes by locking
  // reads of the latest version, i.e. statement-level consistency under
  // shared locks (cf. ConfigForMiniDb's kMvcc2pl SERIALIZABLE branch).
  // Deriving locking_reads from !cr alone left these rows with neither a
  // certifier nor read locks — serializability went unchecked.
  if (row.isolation == IsolationLevel::kSerializable && row.me && !row.sc) {
    config.locking_reads = true;
    config.statement_level_cr = true;
  }
  config.certifier = row.certifier;
  if (!row.me) {
    // Lock-free engines (OCC / TO / Percolator) install at commit.
    config.install_at_commit = true;
    if (row.certifier == CertifierMode::kTsOrder) {
      config.allow_stale_reads = true;
      config.statement_level_cr = true;
    }
  }
  return config;
}

VerifierConfig ConfigForMiniDb(Protocol protocol, IsolationLevel isolation) {
  VerifierConfig config;
  config.statement_level_cr =
      isolation == IsolationLevel::kReadCommitted;
  switch (protocol) {
    case Protocol::kMvcc2pl:
      config.check_me = true;
      config.check_cr = true;
      config.check_fuw = isolation == IsolationLevel::kSnapshotIsolation;
      config.check_sc = false;
      // InnoDB-style SERIALIZABLE: locking reads of the latest version,
      // i.e. statement-level consistency under shared locks.
      if (isolation == IsolationLevel::kSerializable) {
        config.locking_reads = true;
        config.statement_level_cr = true;
        config.check_sc = true;
        config.certifier = CertifierMode::kCycle;
      }
      break;
    case Protocol::kMvcc2plSsi:
      config.check_me = true;
      config.check_cr = true;
      config.check_fuw = isolation >= IsolationLevel::kRepeatableRead;
      config.check_sc = isolation == IsolationLevel::kSerializable;
      config.certifier = CertifierMode::kSsi;
      break;
    case Protocol::kMvccOcc:
      config.check_me = false;
      config.check_cr = true;
      config.check_fuw = false;
      config.check_sc = true;
      config.certifier = CertifierMode::kCommitOrder;
      config.install_at_commit = true;
      break;
    case Protocol::kMvccTo:
      config.check_me = false;
      config.check_cr = true;
      config.check_fuw = false;
      config.check_sc = true;
      config.certifier = CertifierMode::kTsOrder;
      config.install_at_commit = true;
      config.allow_stale_reads = true;
      config.statement_level_cr = true;
      break;
    case Protocol::k2pl:
      config.check_me = true;
      config.check_cr = true;  // locking reads see the latest version
      config.check_fuw = false;
      config.check_sc = false;
      config.locking_reads = true;
      config.statement_level_cr = true;
      break;
    case Protocol::kPercolator:
      // TiDB-optimistic / Percolator SI: snapshot reads, buffered writes
      // installed at commit, first-committer-wins instead of locks.
      config.check_me = false;
      config.check_cr = true;
      config.check_fuw = true;
      config.check_sc = false;
      config.install_at_commit = true;
      break;
  }
  return config;
}

VerifierConfig ConfigForSqlite() {
  VerifierConfig config;
  config.check_cr = true;
  config.statement_level_cr = false;  // DB-level locking: one state per txn
  config.check_me = true;
  config.locking_reads = false;  // readers exclude commits, not writes
  config.check_fuw = false;
  config.check_sc = true;
  config.certifier = CertifierMode::kCycle;
  return config;
}

}  // namespace leopard
