#ifndef LEOPARD_VERIFIER_OVERLAP_STATS_H_
#define LEOPARD_VERIFIER_OVERLAP_STATS_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace leopard {

/// Tracer-side overlap analysis (§IV-B / Fig. 4): how often do the trace
/// intervals of *conflicting* operations overlap, making their order — and
/// hence the dependency between their transactions — uncertain from
/// timestamps alone? β = overlapped / total conflicting pairs.
///
/// Conflicting pairs, per record: consecutive writes (ww), each read
/// against the write whose value it observed (wr), and each read against
/// the next write of the record (rw). This is computed directly from the
/// trace stream, before and independent of mechanism-mirrored
/// verification.
struct OverlapReport {
  uint64_t ww_pairs = 0;
  uint64_t wr_pairs = 0;
  uint64_t rw_pairs = 0;
  uint64_t overlapped_ww = 0;
  uint64_t overlapped_wr = 0;
  uint64_t overlapped_rw = 0;

  uint64_t TotalPairs() const { return ww_pairs + wr_pairs + rw_pairs; }
  uint64_t OverlappedPairs() const {
    return overlapped_ww + overlapped_wr + overlapped_rw;
  }
  double Beta() const {
    return TotalPairs() == 0 ? 0.0
                             : static_cast<double>(OverlappedPairs()) /
                                   static_cast<double>(TotalPairs());
  }
};

/// Analyzes a trace stream sorted by ts_bef (e.g. RunResult::MergedTraces).
/// Only committed transactions' operations form dependencies; pass the
/// full stream — terminal traces identify commit status.
OverlapReport AnalyzeOverlap(const std::vector<Trace>& traces);

}  // namespace leopard

#endif  // LEOPARD_VERIFIER_OVERLAP_STATS_H_
