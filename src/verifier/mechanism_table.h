#ifndef LEOPARD_VERIFIER_MECHANISM_TABLE_H_
#define LEOPARD_VERIFIER_MECHANISM_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "txn/types.h"
#include "verifier/config.h"

namespace leopard {

/// One row of the paper's Fig. 1: which of the four mechanisms implement a
/// given isolation level in a given commercial DBMS, and therefore which
/// mechanisms Leopard must verify there.
struct MechanismRow {
  std::string dbms;
  std::string concurrency_control;
  IsolationLevel isolation = IsolationLevel::kSerializable;
  bool me = false;
  bool cr = false;
  bool fuw = false;
  bool sc = false;
  CertifierMode certifier = CertifierMode::kCycle;
};

/// The encoded Fig. 1 matrix for the DBMSs the paper surveys.
const std::vector<MechanismRow>& MechanismTable();

/// Looks up a row by DBMS name (case-sensitive, e.g. "PostgreSQL") and
/// isolation level.
std::optional<MechanismRow> FindMechanismRow(const std::string& dbms,
                                             IsolationLevel isolation);

/// Builds the VerifierConfig for a Fig. 1 row.
VerifierConfig ConfigFromRow(const MechanismRow& row);

/// Builds the VerifierConfig that mirrors what MiniDB actually enforces for
/// a protocol/isolation pair — the config used throughout tests and
/// benchmarks when verifying MiniDB runs.
VerifierConfig ConfigForMiniDb(Protocol protocol, IsolationLevel isolation);

/// VerifierConfig for real SQLite (rollback-journal mode). SQLite locks at
/// *database* granularity: writers exclude each other from their first
/// write statement (mirrored as per-row exclusive locks), and no writer
/// can commit while any reader's transaction is open — so every
/// transaction reads one consistent database state (transaction-level CR)
/// without per-row read locks, and committed histories are serializable.
VerifierConfig ConfigForSqlite();

}  // namespace leopard

#endif  // LEOPARD_VERIFIER_MECHANISM_TABLE_H_
