#ifndef LEOPARD_WORKLOAD_TPCC_H_
#define LEOPARD_WORKLOAD_TPCC_H_

#include <atomic>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace leopard {

/// Record-level TPC-C: the five transaction profiles (NewOrder 45%, Payment
/// 43%, OrderStatus / Delivery / StockLevel 4% each) with the standard
/// warehouse → district → customer hierarchy, expressed over a key-value
/// schema. SQL predicates become key lookups and contiguous-range reads;
/// attribute-level updates (e.g. customer balance vs. ytd) are modelled as
/// separate records, reproducing the "operations touch different attributes
/// of the same row" dependency structure the paper observes in §VI-D.
///
/// Orders and order lines are *inserted* at fresh keys drawn from a shared
/// order-id counter, so NewOrder exercises writes to previously-absent keys.
class TpccWorkload : public Workload {
 public:
  struct Options {
    uint32_t scale_factor = 1;          ///< number of warehouses
    uint32_t districts_per_warehouse = 10;
    uint32_t customers_per_district = 100;
    uint32_t items = 1000;
  };

  enum class Table : uint8_t {
    kWarehouseYtd = 1,
    kDistrictYtd,
    kDistrictNextOid,
    kCustomerBalance,
    kCustomerYtd,
    kItem,
    kStock,
    kOrder,
    kOrderLine,
  };

  explicit TpccWorkload(const Options& options) : options_(options) {}

  std::string name() const override { return "TPC-C"; }
  std::vector<WriteAccess> InitialRows() const override;
  TxnSpec NextTransaction(Rng& rng) override;

  /// Packs (table, warehouse, district, id) into a single 64-bit key.
  /// Layout: [table:8][warehouse:10][district:6][id:40].
  static Key Encode(Table table, uint32_t w, uint32_t d, uint64_t id) {
    return (static_cast<Key>(table) << 56) | (static_cast<Key>(w) << 46) |
           (static_cast<Key>(d) << 40) | id;
  }

  const Options& options() const { return options_; }
  uint64_t orders_created() const { return next_order_id_.load(); }

 private:
  static constexpr uint32_t kMaxLinesPerOrder = 16;

  TxnSpec NewOrder(Rng& rng);
  TxnSpec Payment(Rng& rng);
  TxnSpec OrderStatus(Rng& rng);
  TxnSpec Delivery(Rng& rng);
  TxnSpec StockLevel(Rng& rng);

  uint32_t PickWarehouse(Rng& rng) const {
    return static_cast<uint32_t>(rng.Uniform(options_.scale_factor));
  }
  uint32_t PickDistrict(Rng& rng) const {
    return static_cast<uint32_t>(rng.Uniform(options_.districts_per_warehouse));
  }
  uint32_t PickCustomer(Rng& rng) const {
    return static_cast<uint32_t>(rng.Uniform(options_.customers_per_district));
  }

  Options options_;
  std::atomic<uint64_t> next_order_id_{0};
};

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_TPCC_H_
