#ifndef LEOPARD_WORKLOAD_BLINDW_H_
#define LEOPARD_WORKLOAD_BLINDW_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace leopard {

/// The BlindW key-value workload family from Cobra, as extended by the
/// paper (§VI, Workload): a 2K-key table, 8 operations per transaction,
/// uniformly-accessed keys.
///
///  - BlindW-W:   100% blind-write transactions with unique values — the
///                hard case for ww tracking (no read precedes the write).
///  - BlindW-RW:  50% pure-read transactions, 50% blind-write transactions.
///  - BlindW-RW+: BlindW-RW with half the item-reads replaced by 10-key
///                range reads, stressing dependency volume.
enum class BlindWVariant : uint8_t {
  kWriteOnly = 0,  // BlindW-W
  kReadWrite,      // BlindW-RW
  kReadWriteRange, // BlindW-RW+
};

class BlindWWorkload : public Workload {
 public:
  struct Options {
    BlindWVariant variant = BlindWVariant::kReadWrite;
    uint64_t record_count = 2000;
    uint32_t ops_per_txn = 8;
    uint32_t range_size = 10;
  };

  explicit BlindWWorkload(const Options& options) : options_(options) {}

  std::string name() const override;
  std::vector<WriteAccess> InitialRows() const override;
  TxnSpec NextTransaction(Rng& rng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_BLINDW_H_
