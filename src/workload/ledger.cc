#include "workload/ledger.h"

namespace leopard {

std::vector<WriteAccess> LedgerWorkload::InitialRows() const {
  std::vector<WriteAccess> rows;
  uint64_t preloaded = static_cast<uint64_t>(
      static_cast<double>(options_.slots) * options_.preload_fraction);
  rows.reserve(preloaded + 1);
  for (uint64_t slot = 0; slot < preloaded; ++slot) {
    rows.push_back(WriteAccess{slot, MakeLoadValue(slot)});
  }
  rows.push_back(WriteAccess{CounterKey(), MakeLoadValue(CounterKey())});
  return rows;
}

TxnSpec LedgerWorkload::NextTransaction(Rng& rng) {
  TxnSpec spec;
  uint64_t slot = rng.Uniform(options_.slots);
  switch (rng.Uniform(10)) {
    case 0:
    case 1:
    case 2: {  // Produce: insert a task, bump the counter.
      spec.ops.push_back(OpSpec::WriteUnique(slot));
      spec.ops.push_back(OpSpec::Read(CounterKey()));
      spec.ops.push_back(OpSpec::WriteLastReadPlus(CounterKey(), 1));
      break;
    }
    case 3:
    case 4:
    case 5: {  // Consume: lock the row, delete it, decrement the counter.
      spec.ops.push_back(OpSpec::ReadForUpdate(slot));
      spec.ops.push_back(OpSpec::Delete(slot));
      spec.ops.push_back(OpSpec::Read(CounterKey()));
      spec.ops.push_back(OpSpec::WriteLastReadPlus(CounterKey(), -1));
      break;
    }
    case 6: {  // Scan: range-read a window of the queue.
      uint64_t first = slot;
      if (first + options_.scan_width > options_.slots) {
        first = options_.slots - options_.scan_width;
      }
      spec.ops.push_back(OpSpec::RangeRead(first, options_.scan_width));
      break;
    }
    case 7: {  // Purge: one statement deleting a whole window.
      uint64_t first = slot;
      uint32_t width = options_.scan_width / 2 + 1;
      if (first + width > options_.slots) first = options_.slots - width;
      spec.ops.push_back(OpSpec::RangeRead(first, width));
      spec.ops.push_back(OpSpec::RangeDelete(first, width));
      break;
    }
    default: {  // Audit: spot-check two slots, lock one.
      spec.ops.push_back(OpSpec::Read(slot));
      spec.ops.push_back(
          OpSpec::Read(rng.Uniform(options_.slots)));
      spec.ops.push_back(
          OpSpec::ReadForUpdate(rng.Uniform(options_.slots)));
      break;
    }
  }
  return spec;
}

}  // namespace leopard
