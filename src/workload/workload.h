#ifndef LEOPARD_WORKLOAD_WORKLOAD_H_
#define LEOPARD_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace leopard {

enum class OpKind : uint8_t {
  kRead = 0,
  kWrite,
  kRangeRead,
  kReadForUpdate,  ///< SELECT ... FOR UPDATE: exclusive lock + current read
  kDelete,         ///< installs a tombstone version
  kRangeWrite,     ///< one statement writing `range_count` rows
  kRangeDelete,    ///< one statement deleting `range_count` rows
};

/// How the client computes the value for a write operation. Workload specs
/// are pure data; the executing client evaluates the rule against the values
/// it has read so far in the transaction. This lets workloads control value
/// *uniqueness*, which drives how many dependencies Leopard can deduce
/// (§VI-D: BlindW writes unique values; SmallBank's amalgamate writes
/// constant zeros that defeat candidate-version matching).
enum class ValueRule : uint8_t {
  kUnique = 0,         ///< globally unique value minted by the client
  kConstant,           ///< fixed constant (e.g. 0)
  kSumOfReads,         ///< sum of all values read so far in this transaction
  kFirstReadPlusDelta, ///< first value read in this transaction + delta
  kLastReadPlusDelta,  ///< most recent value read in this transaction + delta
};

/// One operation of a transaction template.
struct OpSpec {
  OpKind kind = OpKind::kRead;
  Key key = 0;
  uint32_t range_count = 0;       // kRangeRead only
  ValueRule rule = ValueRule::kUnique;  // kWrite only
  Value constant = 0;             // kConstant payload
  int64_t delta = 0;              // kFirstReadPlusDelta payload

  static OpSpec Read(Key key) { return {OpKind::kRead, key, 0, {}, 0, 0}; }
  static OpSpec RangeRead(Key first, uint32_t count) {
    return {OpKind::kRangeRead, first, count, {}, 0, 0};
  }
  static OpSpec WriteUnique(Key key) {
    return {OpKind::kWrite, key, 0, ValueRule::kUnique, 0, 0};
  }
  static OpSpec WriteConstant(Key key, Value c) {
    return {OpKind::kWrite, key, 0, ValueRule::kConstant, c, 0};
  }
  static OpSpec WriteSumOfReads(Key key) {
    return {OpKind::kWrite, key, 0, ValueRule::kSumOfReads, 0, 0};
  }
  static OpSpec WriteFirstReadPlus(Key key, int64_t delta) {
    return {OpKind::kWrite, key, 0, ValueRule::kFirstReadPlusDelta, 0, delta};
  }
  static OpSpec WriteLastReadPlus(Key key, int64_t delta) {
    return {OpKind::kWrite, key, 0, ValueRule::kLastReadPlusDelta, 0, delta};
  }
  static OpSpec ReadForUpdate(Key key) {
    return {OpKind::kReadForUpdate, key, 0, {}, 0, 0};
  }
  static OpSpec Delete(Key key) {
    return {OpKind::kDelete, key, 0, {}, 0, 0};
  }
  static OpSpec RangeWriteUnique(Key first, uint32_t count) {
    return {OpKind::kRangeWrite, first, count, ValueRule::kUnique, 0, 0};
  }
  static OpSpec RangeDelete(Key first, uint32_t count) {
    return {OpKind::kRangeDelete, first, count, {}, 0, 0};
  }
};

/// A transaction template: the ordered operations one transaction performs.
struct TxnSpec {
  std::vector<OpSpec> ops;
};

/// Abstract workload generator. Implementations must be deterministic given
/// the caller-supplied RNG. One Workload instance may be shared by several
/// clients (NextTransaction is called with each client's own RNG).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Rows to bulk-load before the run. Values must be globally unique (the
  /// harness relies on this to seed version matching); use MakeLoadValue.
  virtual std::vector<WriteAccess> InitialRows() const = 0;

  /// Generates the next transaction template.
  virtual TxnSpec NextTransaction(Rng& rng) = 0;
};

/// Globally unique value for the initial load of `key` (top bit set so load
/// values can never collide with client-minted values).
inline Value MakeLoadValue(Key key) {
  return (1ULL << 63) | key;
}

/// Globally unique value minted by client `client` (client ids are < 2^20,
/// counters < 2^40).
inline Value MakeClientValue(ClientId client, uint64_t counter) {
  return (static_cast<Value>(client) + 1) << 40 | counter;
}

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_WORKLOAD_H_
