#include "workload/smallbank.h"

#include <algorithm>

namespace leopard {

SmallBankWorkload::SmallBankWorkload(const Options& options)
    : options_(options),
      accounts_(static_cast<uint64_t>(options.scale_factor) *
                options.accounts_per_sf),
      hot_accounts_(std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(accounts_) *
                                   options.hotspot_size_fraction))) {}

std::vector<WriteAccess> SmallBankWorkload::InitialRows() const {
  std::vector<WriteAccess> rows;
  rows.reserve(accounts_ * 2);
  for (uint64_t a = 0; a < accounts_; ++a) {
    rows.push_back(WriteAccess{CheckingKey(a), MakeLoadValue(CheckingKey(a))});
    rows.push_back(WriteAccess{SavingsKey(a), MakeLoadValue(SavingsKey(a))});
  }
  return rows;
}

uint64_t SmallBankWorkload::PickAccount(Rng& rng) const {
  if (rng.Chance(options_.hotspot_fraction)) {
    return rng.Uniform(hot_accounts_);
  }
  return rng.Uniform(accounts_);
}

TxnSpec SmallBankWorkload::NextTransaction(Rng& rng) {
  TxnSpec spec;
  uint64_t a = PickAccount(rng);
  int64_t amount = static_cast<int64_t>(rng.UniformRange(1, 100));
  switch (rng.Uniform(6)) {
    case 0: {  // Balance: read both balances.
      spec.ops.push_back(OpSpec::Read(CheckingKey(a)));
      spec.ops.push_back(OpSpec::Read(SavingsKey(a)));
      break;
    }
    case 1: {  // DepositChecking: checking += amount.
      spec.ops.push_back(OpSpec::Read(CheckingKey(a)));
      spec.ops.push_back(OpSpec::WriteFirstReadPlus(CheckingKey(a), amount));
      break;
    }
    case 2: {  // TransactSavings: savings += amount.
      spec.ops.push_back(OpSpec::Read(SavingsKey(a)));
      spec.ops.push_back(OpSpec::WriteFirstReadPlus(SavingsKey(a), amount));
      break;
    }
    case 3: {  // Amalgamate: move everything from a to b.
      uint64_t b = PickAccount(rng);
      if (b == a) b = (a + 1) % accounts_;
      spec.ops.push_back(OpSpec::Read(SavingsKey(a)));
      spec.ops.push_back(OpSpec::Read(CheckingKey(a)));
      spec.ops.push_back(OpSpec::Read(CheckingKey(b)));
      // The zero writes are the constant duplicate values called out by the
      // paper: repeated amalgamates on an account install indistinguishable
      // versions.
      spec.ops.push_back(OpSpec::WriteConstant(SavingsKey(a), 0));
      spec.ops.push_back(OpSpec::WriteConstant(CheckingKey(a), 0));
      spec.ops.push_back(OpSpec::WriteSumOfReads(CheckingKey(b)));
      break;
    }
    case 4: {  // WriteCheck: checking -= amount after balance check.
      spec.ops.push_back(OpSpec::Read(SavingsKey(a)));
      spec.ops.push_back(OpSpec::Read(CheckingKey(a)));
      spec.ops.push_back(OpSpec::WriteFirstReadPlus(CheckingKey(a), -amount));
      break;
    }
    default: {  // SendPayment: checking(a) -= amount, checking(b) += amount.
      uint64_t b = PickAccount(rng);
      if (b == a) b = (a + 1) % accounts_;
      spec.ops.push_back(OpSpec::Read(CheckingKey(a)));
      spec.ops.push_back(OpSpec::WriteFirstReadPlus(CheckingKey(a), -amount));
      spec.ops.push_back(OpSpec::Read(CheckingKey(b)));
      spec.ops.push_back(OpSpec::WriteLastReadPlus(CheckingKey(b), amount));
      break;
    }
  }
  return spec;
}

}  // namespace leopard
