#include "workload/tpcc.h"

namespace leopard {

std::vector<WriteAccess> TpccWorkload::InitialRows() const {
  std::vector<WriteAccess> rows;
  auto add = [&rows](Key key) {
    rows.push_back(WriteAccess{key, MakeLoadValue(key)});
  };
  for (uint32_t w = 0; w < options_.scale_factor; ++w) {
    add(Encode(Table::kWarehouseYtd, w, 0, 0));
    for (uint32_t d = 0; d < options_.districts_per_warehouse; ++d) {
      add(Encode(Table::kDistrictYtd, w, d, 0));
      add(Encode(Table::kDistrictNextOid, w, d, 0));
      for (uint32_t c = 0; c < options_.customers_per_district; ++c) {
        add(Encode(Table::kCustomerBalance, w, d, c));
        add(Encode(Table::kCustomerYtd, w, d, c));
      }
    }
    for (uint32_t i = 0; i < options_.items; ++i) {
      add(Encode(Table::kStock, w, 0, i));
    }
  }
  for (uint32_t i = 0; i < options_.items; ++i) {
    add(Encode(Table::kItem, 0, 0, i));
  }
  return rows;
}

TxnSpec TpccWorkload::NextTransaction(Rng& rng) {
  uint64_t roll = rng.Uniform(100);
  if (roll < 45) return NewOrder(rng);
  if (roll < 88) return Payment(rng);
  if (roll < 92) return OrderStatus(rng);
  if (roll < 96) return Delivery(rng);
  return StockLevel(rng);
}

TxnSpec TpccWorkload::NewOrder(Rng& rng) {
  TxnSpec spec;
  uint32_t w = PickWarehouse(rng);
  uint32_t d = PickDistrict(rng);
  spec.ops.push_back(OpSpec::Read(Encode(Table::kWarehouseYtd, w, 0, 0)));
  // Advance the district's next-order-id sequence (read-modify-write).
  Key next_oid = Encode(Table::kDistrictNextOid, w, d, 0);
  spec.ops.push_back(OpSpec::Read(next_oid));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(next_oid, 1));
  uint32_t lines = static_cast<uint32_t>(rng.UniformRange(5, 15));
  uint64_t oid = next_order_id_.fetch_add(1);
  for (uint32_t l = 0; l < lines; ++l) {
    uint64_t item = rng.Uniform(options_.items);
    spec.ops.push_back(OpSpec::Read(Encode(Table::kItem, 0, 0, item)));
    Key stock = Encode(Table::kStock, w, 0, item);
    spec.ops.push_back(OpSpec::Read(stock));
    spec.ops.push_back(OpSpec::WriteLastReadPlus(
        stock, -static_cast<int64_t>(rng.UniformRange(1, 10))));
    spec.ops.push_back(OpSpec::WriteUnique(
        Encode(Table::kOrderLine, 0, 0, oid * kMaxLinesPerOrder + l)));
  }
  spec.ops.push_back(
      OpSpec::WriteUnique(Encode(Table::kOrder, 0, 0, oid)));
  return spec;
}

TxnSpec TpccWorkload::Payment(Rng& rng) {
  TxnSpec spec;
  uint32_t w = PickWarehouse(rng);
  uint32_t d = PickDistrict(rng);
  uint32_t c = PickCustomer(rng);
  int64_t amount = static_cast<int64_t>(rng.UniformRange(1, 5000));
  Key wh = Encode(Table::kWarehouseYtd, w, 0, 0);
  spec.ops.push_back(OpSpec::Read(wh));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(wh, amount));
  Key dist = Encode(Table::kDistrictYtd, w, d, 0);
  spec.ops.push_back(OpSpec::Read(dist));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(dist, amount));
  Key bal = Encode(Table::kCustomerBalance, w, d, c);
  spec.ops.push_back(OpSpec::Read(bal));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(bal, -amount));
  return spec;
}

TxnSpec TpccWorkload::OrderStatus(Rng& rng) {
  TxnSpec spec;
  uint32_t w = PickWarehouse(rng);
  uint32_t d = PickDistrict(rng);
  uint32_t c = PickCustomer(rng);
  spec.ops.push_back(
      OpSpec::Read(Encode(Table::kCustomerBalance, w, d, c)));
  uint64_t created = next_order_id_.load();
  if (created > 0) {
    uint64_t oid = rng.Uniform(created);
    spec.ops.push_back(OpSpec::Read(Encode(Table::kOrder, 0, 0, oid)));
    spec.ops.push_back(OpSpec::RangeRead(
        Encode(Table::kOrderLine, 0, 0, oid * kMaxLinesPerOrder),
        kMaxLinesPerOrder));
  }
  return spec;
}

TxnSpec TpccWorkload::Delivery(Rng& rng) {
  TxnSpec spec;
  uint32_t w = PickWarehouse(rng);
  uint32_t d = PickDistrict(rng);
  uint32_t c = PickCustomer(rng);
  uint64_t created = next_order_id_.load();
  if (created > 0) {
    // Stamp the carrier onto an existing order (overwrite).
    uint64_t oid = rng.Uniform(created);
    spec.ops.push_back(
        OpSpec::WriteUnique(Encode(Table::kOrder, 0, 0, oid)));
  }
  Key bal = Encode(Table::kCustomerBalance, w, d, c);
  spec.ops.push_back(OpSpec::Read(bal));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(
      bal, static_cast<int64_t>(rng.UniformRange(1, 500))));
  Key ytd = Encode(Table::kCustomerYtd, w, d, c);
  spec.ops.push_back(OpSpec::Read(ytd));
  spec.ops.push_back(OpSpec::WriteLastReadPlus(ytd, 1));
  return spec;
}

TxnSpec TpccWorkload::StockLevel(Rng& rng) {
  TxnSpec spec;
  uint32_t w = PickWarehouse(rng);
  uint32_t d = PickDistrict(rng);
  spec.ops.push_back(
      OpSpec::Read(Encode(Table::kDistrictNextOid, w, d, 0)));
  uint64_t first_item =
      rng.Uniform(options_.items > 20 ? options_.items - 20 : 1);
  spec.ops.push_back(
      OpSpec::RangeRead(Encode(Table::kStock, w, 0, first_item), 20));
  return spec;
}

}  // namespace leopard
