#ifndef LEOPARD_WORKLOAD_LEDGER_H_
#define LEOPARD_WORKLOAD_LEDGER_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace leopard {

/// A task-queue / outbox workload built around the SQL surface of the
/// paper's §VI-F bug listings: producers INSERT rows, consumers lock rows
/// with SELECT ... FOR UPDATE and DELETE them, auditors range-scan the
/// queue — so absent rows, tombstones and exclusive locking reads are all
/// continuously exercised (none of the classic benchmarks touch them).
///
/// Schema: `slots` keys [0, slots) hold tasks (or nothing); key `slots`
/// is a queue-depth counter maintained with read-modify-writes.
class LedgerWorkload : public Workload {
 public:
  struct Options {
    uint64_t slots = 500;
    /// Fraction of slots preloaded with a task.
    double preload_fraction = 0.5;
    uint32_t scan_width = 10;
  };

  explicit LedgerWorkload(const Options& options) : options_(options) {}

  std::string name() const override { return "Ledger"; }
  std::vector<WriteAccess> InitialRows() const override;
  TxnSpec NextTransaction(Rng& rng) override;

  Key CounterKey() const { return options_.slots; }

 private:
  Options options_;
};

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_LEDGER_H_
