#ifndef LEOPARD_WORKLOAD_YCSB_H_
#define LEOPARD_WORKLOAD_YCSB_H_

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace leopard {

/// The standard YCSB workload mixes.
enum class YcsbMix : uint8_t {
  kA = 0,  ///< 50% read / 50% update
  kB,      ///< 95% read / 5% update
  kC,      ///< 100% read
  kE,      ///< 95% short range scan / 5% insert-style update
  kF,      ///< read-modify-write
  kCustom, ///< use Options::read_ratio directly
};

/// YCSB key-value workload over a single table: each transaction is
/// `ops_per_txn` operations drawn from the selected mix over zipfian-chosen
/// keys. YCSB-A with a custom read ratio drives the overlap-ratio study of
/// Fig. 4 (sweeping `theta`, the client count and the read ratio).
class YcsbWorkload : public Workload {
 public:
  struct Options {
    uint64_t record_count = 100000;
    double theta = 0.6;        ///< zipfian skew; 0 = uniform
    double read_ratio = 0.5;   ///< used by kA (fixed) and kCustom
    uint32_t ops_per_txn = 4;
    YcsbMix mix = YcsbMix::kCustom;
    uint32_t scan_length = 10;  ///< kE range size
  };

  explicit YcsbWorkload(const Options& options);

  std::string name() const override;
  std::vector<WriteAccess> InitialRows() const override;
  TxnSpec NextTransaction(Rng& rng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
  ZipfianGenerator zipf_;
};

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_YCSB_H_
