#include "workload/ycsb.h"

namespace leopard {

YcsbWorkload::YcsbWorkload(const Options& options)
    : options_(options), zipf_(options.record_count, options.theta) {}

std::vector<WriteAccess> YcsbWorkload::InitialRows() const {
  std::vector<WriteAccess> rows;
  rows.reserve(options_.record_count);
  for (uint64_t k = 0; k < options_.record_count; ++k) {
    rows.push_back(WriteAccess{k, MakeLoadValue(k)});
  }
  return rows;
}

std::string YcsbWorkload::name() const {
  switch (options_.mix) {
    case YcsbMix::kA:
      return "YCSB-A";
    case YcsbMix::kB:
      return "YCSB-B";
    case YcsbMix::kC:
      return "YCSB-C";
    case YcsbMix::kE:
      return "YCSB-E";
    case YcsbMix::kF:
      return "YCSB-F";
    case YcsbMix::kCustom:
      return "YCSB-A";
  }
  return "YCSB";
}

TxnSpec YcsbWorkload::NextTransaction(Rng& rng) {
  TxnSpec spec;
  spec.ops.reserve(options_.ops_per_txn);
  double read_ratio = options_.read_ratio;
  switch (options_.mix) {
    case YcsbMix::kA:
      read_ratio = 0.5;
      break;
    case YcsbMix::kB:
      read_ratio = 0.95;
      break;
    case YcsbMix::kC:
      read_ratio = 1.0;
      break;
    case YcsbMix::kCustom:
    case YcsbMix::kE:
    case YcsbMix::kF:
      break;
  }
  for (uint32_t i = 0; i < options_.ops_per_txn; ++i) {
    Key key = zipf_.Next(rng);
    switch (options_.mix) {
      case YcsbMix::kE: {  // 95% short scans, 5% updates
        if (rng.Chance(0.95)) {
          uint32_t len = options_.scan_length;
          if (key + len > options_.record_count) {
            key = options_.record_count - len;
          }
          spec.ops.push_back(OpSpec::RangeRead(key, len));
        } else {
          spec.ops.push_back(OpSpec::WriteUnique(key));
        }
        break;
      }
      case YcsbMix::kF: {  // read-modify-write (fresh unique payload)
        spec.ops.push_back(OpSpec::Read(key));
        spec.ops.push_back(OpSpec::WriteUnique(key));
        break;
      }
      default: {
        if (rng.Chance(read_ratio)) {
          spec.ops.push_back(OpSpec::Read(key));
        } else {
          spec.ops.push_back(OpSpec::WriteUnique(key));
        }
        break;
      }
    }
  }
  return spec;
}

}  // namespace leopard
