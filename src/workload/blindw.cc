#include "workload/blindw.h"

namespace leopard {

std::string BlindWWorkload::name() const {
  switch (options_.variant) {
    case BlindWVariant::kWriteOnly:
      return "BlindW-W";
    case BlindWVariant::kReadWrite:
      return "BlindW-RW";
    case BlindWVariant::kReadWriteRange:
      return "BlindW-RW+";
  }
  return "BlindW";
}

std::vector<WriteAccess> BlindWWorkload::InitialRows() const {
  std::vector<WriteAccess> rows;
  rows.reserve(options_.record_count);
  for (uint64_t k = 0; k < options_.record_count; ++k) {
    rows.push_back(WriteAccess{k, MakeLoadValue(k)});
  }
  return rows;
}

TxnSpec BlindWWorkload::NextTransaction(Rng& rng) {
  TxnSpec spec;
  spec.ops.reserve(options_.ops_per_txn);
  bool write_txn = options_.variant == BlindWVariant::kWriteOnly ||
                   rng.Chance(0.5);
  for (uint32_t i = 0; i < options_.ops_per_txn; ++i) {
    Key key = rng.Uniform(options_.record_count);
    if (write_txn) {
      spec.ops.push_back(OpSpec::WriteUnique(key));
    } else if (options_.variant == BlindWVariant::kReadWriteRange &&
               rng.Chance(0.5)) {
      uint32_t count = options_.range_size;
      if (key + count > options_.record_count) {
        key = options_.record_count - count;
      }
      spec.ops.push_back(OpSpec::RangeRead(key, count));
    } else {
      spec.ops.push_back(OpSpec::Read(key));
    }
  }
  return spec;
}

}  // namespace leopard
