#ifndef LEOPARD_WORKLOAD_SMALLBANK_H_
#define LEOPARD_WORKLOAD_SMALLBANK_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace leopard {

/// SmallBank (Alomari et al., ICDE'08): a banking workload over per-account
/// checking and savings balances with six transaction types. Balance-update
/// transactions derive written values from values read, and `amalgamate`
/// writes constant zeros — reproducing the duplicate-value traces that make
/// some SmallBank dependencies undeducible (§VI-D, Fig. 13a).
class SmallBankWorkload : public Workload {
 public:
  struct Options {
    /// scale_factor 1 corresponds to `accounts_per_sf` accounts.
    uint32_t scale_factor = 1;
    uint32_t accounts_per_sf = 1000;
    /// Fraction of transactions hitting a small hot set, as in the original
    /// benchmark's 90/10 split.
    double hotspot_fraction = 0.9;
    double hotspot_size_fraction = 0.1;
  };

  explicit SmallBankWorkload(const Options& options);

  std::string name() const override { return "SmallBank"; }
  std::vector<WriteAccess> InitialRows() const override;
  TxnSpec NextTransaction(Rng& rng) override;

  uint64_t account_count() const { return accounts_; }

  static Key CheckingKey(uint64_t account) { return account * 2; }
  static Key SavingsKey(uint64_t account) { return account * 2 + 1; }

 private:
  uint64_t PickAccount(Rng& rng) const;

  Options options_;
  uint64_t accounts_;
  uint64_t hot_accounts_;
};

}  // namespace leopard

#endif  // LEOPARD_WORKLOAD_SMALLBANK_H_
