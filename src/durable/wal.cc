#include "durable/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/state_codec.h"
#include "durable/fs.h"
#include "trace/trace_io.h"

namespace leopard {
namespace durable {

namespace {

constexpr char kMagic[8] = {'L', 'E', 'O', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 16;  // magic + u64 first_seq
constexpr size_t kFooterBytes = 8;   // 0xFF 'C' 'R' 'C' + u32 crc32
constexpr char kFooterSentinel[4] = {'\xFF', 'C', 'R', 'C'};

std::string SegmentName(uint64_t first_seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%020" PRIu64 ".wal", first_seq);
  return buf;
}

/// Lists `dir`'s segment files as (first_seq, path), sorted by first_seq.
/// The zero-padded names make lexical and numeric order agree, but the seq
/// is parsed back out so a stray file cannot reorder the log.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (std::sscanf(name.c_str(), "seg-%" SCNu64 ".wal", &seq) == 1) {
      out.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool HasFooter(const std::string& bytes) {
  return bytes.size() >= kHeaderBytes + kFooterBytes &&
         std::memcmp(bytes.data() + bytes.size() - kFooterBytes,
                     kFooterSentinel, sizeof(kFooterSentinel)) == 0;
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status WalWriter::Open(const std::string& dir, uint64_t next_seq,
                       const Options& options) {
  dir_ = dir;
  options_ = options;
  next_seq_ = next_seq;
  Status s = EnsureDir(dir_);
  if (!s.ok()) return s;

  // Seal whatever the previous incarnation left active (its torn tail was
  // already truncated by WalReplay), so this incarnation's entries start a
  // fresh segment and every sealed segment is CRC-covered.
  auto segments = ListSegments(dir_);
  segment_count_ = segments.size();
  if (!segments.empty()) {
    const std::string& last = segments.back().second;
    auto bytes = ReadFileToString(last);
    if (!bytes.ok()) return bytes.status();
    if (!HasFooter(*bytes)) {
      if (bytes->size() <= kHeaderBytes) {
        // Empty active segment: reuse its name rather than sealing a
        // zero-entry file (the next segment would collide on first_seq).
        std::error_code ec;
        std::filesystem::remove(last, ec);
        --segment_count_;
      } else {
        std::string sealed = *bytes;
        const uint32_t crc = Crc32(sealed.data(), sealed.size());
        sealed.append(kFooterSentinel, sizeof(kFooterSentinel));
        for (int i = 0; i < 4; ++i) {
          sealed.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
        }
        s = WriteFileAtomic(last, sealed);
        if (!s.ok()) return s;
      }
    }
  }
  return OpenSegment();
}

Status WalWriter::OpenSegment() {
  segment_path_ = dir_ + "/" + SegmentName(next_seq_);
  file_ = std::fopen(segment_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot create WAL segment " + segment_path_);
  }
  std::string header(kMagic, sizeof(kMagic));
  AppendU64(header, next_seq_);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("cannot write WAL header to " + segment_path_);
  }
  segment_size_ = header.size();
  ++segment_count_;
  return Status::Ok();
}

Status WalWriter::AppendAddClient(ClientId client) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  pending_.push_back(static_cast<char>(WalEntry::Kind::kAddClient));
  for (int i = 0; i < 4; ++i) {
    pending_.push_back(static_cast<char>((client >> (8 * i)) & 0xff));
  }
  ++next_seq_;
  return Status::Ok();
}

Status WalWriter::AppendTrace(const Trace& trace) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  pending_.push_back(static_cast<char>(WalEntry::Kind::kTrace));
  AppendTraceRecord(pending_, trace);
  ++next_seq_;
  return Status::Ok();
}

Status WalWriter::FlushPending() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (!pending_.empty()) {
    if (std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
        pending_.size()) {
      return Status::Internal("WAL write error on " + segment_path_);
    }
    segment_size_ += pending_.size();
    bytes_appended_ += pending_.size();
    pending_.clear();
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("WAL flush error on " + segment_path_);
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  Status s = FlushPending();
  if (!s.ok()) return s;
  if (segment_size_ >= options_.segment_bytes) return Rotate();
  return Status::Ok();
}

Status WalWriter::Rotate() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (segment_size_ <= kHeaderBytes && pending_.empty()) {
    return Status::Ok();  // nothing in the active segment yet
  }
  Status s = FlushPending();
  if (!s.ok()) return s;
  s = SealActive();
  if (!s.ok()) return s;
  return OpenSegment();
}

Status WalWriter::SealActive() {
  std::fclose(file_);
  file_ = nullptr;
  // The footer CRC covers the whole segment; read it back rather than
  // keeping 64MB buffered — rotation is rare and sequential reads of a
  // just-written file are served from the page cache.
  auto bytes = ReadFileToString(segment_path_);
  if (!bytes.ok()) return bytes.status();
  const uint32_t crc = Crc32(bytes->data(), bytes->size());
  std::FILE* f = std::fopen(segment_path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("cannot reopen " + segment_path_ + " to seal");
  }
  char footer[kFooterBytes];
  std::memcpy(footer, kFooterSentinel, sizeof(kFooterSentinel));
  for (int i = 0; i < 4; ++i) {
    footer[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  const bool ok = std::fwrite(footer, 1, sizeof(footer), f) ==
                      sizeof(footer) &&
                  std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Status::Internal("cannot seal " + segment_path_);
  return Status::Ok();
}

size_t WalWriter::RemoveSegmentsBelow(uint64_t seq) {
  auto segments = ListSegments(dir_);
  size_t removed = 0;
  // Segment i's entries all precede segment i+1's first_seq, so i is fully
  // below `seq` exactly when its successor starts at or below it. The
  // active segment (last) is never removed.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > seq) break;
    if (segments[i].second == segment_path_) break;
    std::error_code ec;
    if (std::filesystem::remove(segments[i].second, ec) && !ec) {
      ++removed;
      --segment_count_;
    }
  }
  return removed;
}

Status WalReplay(const std::string& dir, uint64_t from_seq,
                 const std::function<Status(const WalEntry&)>& fn,
                 WalReplayStats* stats, bool truncate_torn) {
  WalReplayStats local;
  WalReplayStats& st = stats != nullptr ? *stats : local;
  st = WalReplayStats{};
  st.next_seq = from_seq;
  auto segments = ListSegments(dir);
  if (segments.empty()) return Status::Ok();
  if (segments.front().first > from_seq) {
    // Earlier segments were garbage-collected past the requested replay
    // point — the surviving log cannot reconstruct the state.
    return Status::FailedPrecondition(
        "WAL starts at sequence " + std::to_string(segments.front().first) +
        ", after the requested replay point " + std::to_string(from_seq));
  }

  uint64_t expected_first = segments.front().first;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_seq, path] = segments[i];
    if (first_seq != expected_first) {
      return Status::Internal("WAL gap: segment starting at " +
                              std::to_string(expected_first) +
                              " is missing (found " + path + ")");
    }
    auto bytes_or = ReadFileToString(path);
    if (!bytes_or.ok()) return bytes_or.status();
    std::string& bytes = *bytes_or;
    ++st.segments_read;
    if (bytes.size() < kHeaderBytes ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::InvalidArgument("bad WAL segment header: " + path);
    }
    {
      StateReader header(bytes, sizeof(kMagic));
      uint64_t hdr_seq = 0;
      Status s = header.GetU64(hdr_seq);
      if (!s.ok() || hdr_seq != first_seq) {
        return Status::InvalidArgument(
            "WAL segment name/header sequence mismatch: " + path);
      }
    }

    const bool sealed = HasFooter(bytes);
    const bool last = i + 1 == segments.size();
    if (!sealed && !last) {
      return Status::InvalidArgument(
          "unsealed WAL segment before the end of the log: " + path);
    }
    size_t end = bytes.size();
    if (sealed) {
      end -= kFooterBytes;
      uint32_t stored = 0;
      for (int b = 0; b < 4; ++b) {
        stored |= static_cast<uint32_t>(
                      static_cast<uint8_t>(bytes[end + 4 + b]))
                  << (8 * b);
      }
      if (Crc32(bytes.data(), end) != stored) {
        return Status::InvalidArgument("WAL segment CRC mismatch: " + path);
      }
    }

    size_t pos = kHeaderBytes;
    uint64_t seq = first_seq;
    while (pos < end) {
      const size_t entry_start = pos;
      const uint8_t kind = static_cast<uint8_t>(bytes[pos]);
      WalEntry entry;
      entry.seq = seq;
      Status decoded = Status::Ok();
      if (kind == static_cast<uint8_t>(WalEntry::Kind::kAddClient)) {
        if (end - pos < 5) {
          decoded = Status::InvalidArgument("truncated AddClient entry");
        } else {
          entry.kind = WalEntry::Kind::kAddClient;
          entry.client = 0;
          for (int b = 0; b < 4; ++b) {
            entry.client |= static_cast<ClientId>(
                                static_cast<uint8_t>(bytes[pos + 1 + b]))
                            << (8 * b);
          }
          pos += 5;
        }
      } else if (kind == static_cast<uint8_t>(WalEntry::Kind::kTrace)) {
        ++pos;
        entry.kind = WalEntry::Kind::kTrace;
        decoded = DecodeTraceRecord(bytes, pos, entry.trace);
      } else {
        decoded = Status::InvalidArgument("unknown WAL entry kind " +
                                          std::to_string(kind));
      }
      if (!decoded.ok()) {
        if (sealed) {
          return Status::InvalidArgument("corrupt entry in sealed segment " +
                                         path + ": " + decoded.message());
        }
        // Torn tail of the active segment: the crash landed mid-append.
        // Truncate to the last whole entry so the writer can seal cleanly.
        st.torn_bytes = bytes.size() - entry_start;
        if (truncate_torn) {
          std::error_code ec;
          std::filesystem::resize_file(path, entry_start, ec);
          if (ec) {
            return Status::Internal("cannot truncate torn WAL tail of " +
                                    path + ": " + ec.message());
          }
        }
        break;
      }
      if (seq >= from_seq) {
        Status s = fn(entry);
        if (!s.ok()) return s;
        ++st.entries_replayed;
      } else {
        ++st.entries_skipped;
      }
      ++seq;
    }
    expected_first = seq;
    st.next_seq = seq;
  }
  if (st.next_seq < from_seq) {
    return Status::FailedPrecondition(
        "WAL ends at sequence " + std::to_string(st.next_seq) +
        ", before the checkpoint cut " + std::to_string(from_seq));
  }
  return Status::Ok();
}

}  // namespace durable
}  // namespace leopard
