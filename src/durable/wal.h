#ifndef LEOPARD_DURABLE_WAL_H_
#define LEOPARD_DURABLE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace leopard {
namespace durable {

/// Write-ahead trace log for the verification server.
///
/// Every batch the server accepts is appended here *before* it is pushed
/// into the online verifier, so a crash loses nothing: on restart the
/// entries past the newest checkpoint's cut sequence are replayed into a
/// fresh verifier and the run continues with identical verdicts.
///
/// Layout: `<dir>/seg-<first_seq>.wal` segment files. Each segment starts
/// with an 8-byte magic ("LEOWAL01") and the u64 sequence number of its
/// first entry, followed by entries:
///
///   u8 kAddClient (1) | u32 client_id
///   u8 kTrace     (2) | <trace record, trace_io codec, client id inside>
///
/// Sequence numbers are implicit: header first_seq + entry index. When a
/// segment reaches the size threshold it is *sealed* — the trace-file
/// integrity footer (0xFF 'C' 'R' 'C' + crc32 of every preceding byte) is
/// appended and a new segment begins. The entry-kind bytes never collide
/// with the 0xFF sentinel.
///
/// Durability model: appends are fflush()ed per batch, so the bytes live in
/// the OS page cache — they survive a SIGKILL of the process (the
/// crash/resume tests' fault model), not a kernel panic or power cut.
/// Sealed segments are CRC-verified on replay (any corruption is a hard
/// error); the active segment legitimately ends mid-entry after a crash,
/// so its torn tail is detected and truncated at the last whole entry.
class WalWriter {
 public:
  struct Options {
    /// Seal + rotate the active segment once it exceeds this many bytes.
    size_t segment_bytes = 64u << 20;
  };

  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the log in `dir` (created if missing), with the next entry to be
  /// appended carrying sequence number `next_seq` — after recovery this is
  /// where replay stopped; 0 for a fresh state dir. A pre-existing active
  /// segment is sealed first so every segment's sequence range stays dense.
  Status Open(const std::string& dir, uint64_t next_seq,
              const Options& options);

  /// Appends a client registration / a trace. Buffered — call Sync() at
  /// batch boundaries to make the appends crash-durable.
  Status AppendAddClient(ClientId client);
  Status AppendTrace(const Trace& trace);

  /// Flushes buffered appends to the OS (fflush). Cheap; per-batch.
  Status Sync();

  /// Seals the active segment (CRC footer) and starts a new one. Called by
  /// the checkpointer so the cut lands on a segment boundary and fully
  /// pre-cut segments become garbage-collectable. No-op on an empty
  /// active segment.
  Status Rotate();

  /// Deletes sealed segments whose every entry has sequence < `seq`.
  /// Returns segments removed.
  size_t RemoveSegmentsBelow(uint64_t seq);

  /// Sequence number the next appended entry will carry — the checkpoint
  /// cut point.
  uint64_t next_seq() const { return next_seq_; }
  /// Segments currently on disk (sealed + active), for /statusz.
  uint64_t segment_count() const { return segment_count_; }
  /// Total entry bytes appended through this writer (excludes headers).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  Status OpenSegment();
  Status SealActive();
  /// The write+fflush half of Sync(), without the size-triggered rotation
  /// (Rotate() calls this; Sync() adds the rotation check on top).
  Status FlushPending();

  std::string dir_;
  Options options_;
  std::FILE* file_ = nullptr;
  std::string pending_;          ///< entries encoded since the last flush
  std::string segment_path_;
  size_t segment_size_ = 0;      ///< bytes written to the active segment
  uint64_t next_seq_ = 0;
  uint64_t segment_count_ = 0;
  uint64_t bytes_appended_ = 0;
};

/// One decoded WAL entry handed to the replay callback.
struct WalEntry {
  enum class Kind : uint8_t { kAddClient = 1, kTrace = 2 };
  Kind kind = Kind::kTrace;
  uint64_t seq = 0;
  ClientId client = 0;  ///< kAddClient only
  Trace trace;          ///< kTrace only
};

struct WalReplayStats {
  uint64_t entries_replayed = 0;
  uint64_t entries_skipped = 0;  ///< seq below the checkpoint cut
  uint64_t segments_read = 0;
  uint64_t torn_bytes = 0;       ///< truncated tail of the active segment
  uint64_t next_seq = 0;         ///< where appending resumes
};

/// Replays every entry with seq >= `from_seq` in order, invoking `fn` for
/// each; a non-OK return from `fn` aborts the replay with that status.
/// Sealed segments must pass CRC verification; a torn tail on the final
/// (active) segment is truncated, not an error. An empty or missing
/// directory replays nothing (stats.next_seq = from_seq, 0 entries).
/// `truncate_torn = false` reports the torn tail in stats without touching
/// the file — for read-only inspection (the leopard_state tool).
Status WalReplay(const std::string& dir, uint64_t from_seq,
                 const std::function<Status(const WalEntry&)>& fn,
                 WalReplayStats* stats, bool truncate_torn = true);

}  // namespace durable
}  // namespace leopard

#endif  // LEOPARD_DURABLE_WAL_H_
