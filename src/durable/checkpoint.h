#ifndef LEOPARD_DURABLE_CHECKPOINT_H_
#define LEOPARD_DURABLE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace leopard {
namespace durable {

/// On-disk checkpoint store for the verification server.
///
/// A checkpoint is the complete serialized verifier state at a quiescent
/// point, stamped with the WAL *cut* — the sequence number of the first WAL
/// entry NOT reflected in it. Recovery loads the newest valid checkpoint
/// and replays the WAL from its cut.
///
/// Layout in the state directory:
///
///   ckpt-<cut>.bin   magic "LEOCKP03", then meta (cut, config fingerprint,
///                    shard count), the length-prefixed payload, and a
///                    crc32 of every preceding byte.
///   MANIFEST         magic "LEOMAN01" + the newest cut + crc32, written
///                    atomically (temp + rename) after the checkpoint file.
///
/// Corruption handling is fallback, not failure: a checkpoint whose CRC
/// does not match (torn write, bit rot) is skipped and the next-newest one
/// is tried — the WAL extends back far enough to cover any retained
/// checkpoint, so recovering from an older cut just replays more entries.
/// The store keeps the newest two checkpoints for exactly this reason and
/// prunes the rest after each successful Write().
class CheckpointStore {
 public:
  struct Meta {
    /// WAL sequence number of the first entry not covered by this
    /// checkpoint; replay resumes here.
    uint64_t cut = 0;
    /// Fingerprint of the verifier configuration that produced the state
    /// (serde::ConfigFingerprint). Loading under a different config would
    /// silently change verdicts, so a mismatch is a hard error.
    uint64_t config_fingerprint = 0;
    /// Shard count the state was saved with; must match to load.
    uint32_t n_shards = 1;
  };

  /// A checkpoint read back from disk, CRC-verified.
  struct Loaded {
    Meta meta;
    std::string payload;
    std::string path;
  };

  /// Creates `dir` if missing. Must be called before Write/LoadNewest.
  Status Init(const std::string& dir);

  /// Persists a checkpoint: writes ckpt-<cut>.bin (temp + rename), then the
  /// manifest, then prunes all but the newest two checkpoint files.
  Status Write(const Meta& meta, const std::string& payload);

  /// Loads the newest checkpoint that passes CRC verification, preferring
  /// the manifest's cut and falling back to older files on corruption.
  /// NotFound when the directory holds no usable checkpoint (fresh start).
  StatusOr<Loaded> LoadNewest() const;

  /// All checkpoint files present, as (cut, path) sorted ascending by cut.
  std::vector<std::pair<uint64_t, std::string>> List() const;

  /// Reads and CRC-verifies one checkpoint file (used by the leopard_state
  /// inspector and internally by LoadNewest).
  static StatusOr<Loaded> ReadCheckpoint(const std::string& path);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace durable
}  // namespace leopard

#endif  // LEOPARD_DURABLE_CHECKPOINT_H_
