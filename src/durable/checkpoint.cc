#include "durable/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/state_codec.h"
#include "durable/fs.h"
#include "trace/trace_io.h"

namespace leopard {
namespace durable {

namespace {

// "02": PR8 added the sharded router's routing table + rebalancer sketch to
// the engine state; an "01" checkpoint would misparse past the txn routes.
constexpr char kCkptMagic[8] = {'L', 'E', 'O', 'C', 'K', 'P', '0', '3'};
constexpr char kManifestMagic[8] = {'L', 'E', 'O', 'M', 'A', 'N', '0', '1'};
constexpr size_t kKeepCheckpoints = 2;

std::string CheckpointName(uint64_t cut) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".bin", cut);
  return buf;
}

void AppendCrc(std::string& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

bool CheckTrailingCrc(const std::string& bytes) {
  if (bytes.size() < 4) return false;
  const size_t body = bytes.size() - 4;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[body + i]))
              << (8 * i);
  }
  return Crc32(bytes.data(), body) == stored;
}

}  // namespace

Status CheckpointStore::Init(const std::string& dir) {
  dir_ = dir;
  return EnsureDir(dir_);
}

Status CheckpointStore::Write(const Meta& meta, const std::string& payload) {
  std::string bytes(kCkptMagic, sizeof(kCkptMagic));
  {
    StateWriter w(bytes);
    w.PutU64(meta.cut);
    w.PutU64(meta.config_fingerprint);
    w.PutU32(meta.n_shards);
    w.PutBytes(payload);
  }
  AppendCrc(bytes);
  const std::string path = dir_ + "/" + CheckpointName(meta.cut);
  Status s = WriteFileAtomic(path, bytes);
  if (!s.ok()) return s;

  // Manifest second: a crash between the two leaves the previous manifest
  // pointing at the previous (still present) checkpoint — always valid.
  std::string manifest(kManifestMagic, sizeof(kManifestMagic));
  {
    StateWriter w(manifest);
    w.PutU64(meta.cut);
  }
  AppendCrc(manifest);
  s = WriteFileAtomic(dir_ + "/MANIFEST", manifest);
  if (!s.ok()) return s;

  auto all = List();
  for (size_t i = 0; i + kKeepCheckpoints < all.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(all[i].second, ec);
  }
  return Status::Ok();
}

std::vector<std::pair<uint64_t, std::string>> CheckpointStore::List() const {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    uint64_t cut = 0;
    if (std::sscanf(name.c_str(), "ckpt-%" SCNu64 ".bin", &cut) == 1) {
      out.emplace_back(cut, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<CheckpointStore::Loaded> CheckpointStore::ReadCheckpoint(
    const std::string& path) {
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = *bytes_or;
  if (bytes.size() < sizeof(kCkptMagic) + 4 ||
      std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint file: " + path);
  }
  if (!CheckTrailingCrc(bytes)) {
    return Status::InvalidArgument("checkpoint CRC mismatch: " + path);
  }
  // CRC verified; decode the body (excluding the trailing crc32).
  const std::string body(bytes, 0, bytes.size() - 4);
  StateReader r(body, sizeof(kCkptMagic));
  Loaded loaded;
  loaded.path = path;
  Status s;
  if ((s = r.GetU64(loaded.meta.cut)).ok() &&
      (s = r.GetU64(loaded.meta.config_fingerprint)).ok() &&
      (s = r.GetU32(loaded.meta.n_shards)).ok()) {
    s = r.GetBytes(loaded.payload);
  }
  if (!s.ok()) {
    return Status::InvalidArgument("truncated checkpoint " + path + ": " +
                                   s.message());
  }
  return loaded;
}

StatusOr<CheckpointStore::Loaded> CheckpointStore::LoadNewest() const {
  // Candidate order: the manifest's cut first (it names the checkpoint whose
  // write fully completed), then every file on disk from newest to oldest.
  std::vector<std::string> candidates;
  auto manifest_or = ReadFileToString(dir_ + "/MANIFEST");
  if (manifest_or.ok() && CheckTrailingCrc(*manifest_or) &&
      manifest_or->size() >= sizeof(kManifestMagic) + 8 + 4 &&
      std::memcmp(manifest_or->data(), kManifestMagic,
                  sizeof(kManifestMagic)) == 0) {
    StateReader r(*manifest_or, sizeof(kManifestMagic));
    uint64_t cut = 0;
    if (r.GetU64(cut).ok()) {
      candidates.push_back(dir_ + "/" + CheckpointName(cut));
    }
  }
  auto all = List();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (candidates.empty() || candidates.front() != it->second) {
      candidates.push_back(it->second);
    }
  }
  Status last_error = Status::NotFound("no checkpoint in " + dir_);
  for (const std::string& path : candidates) {
    auto loaded = ReadCheckpoint(path);
    if (loaded.ok()) return loaded;
    last_error = loaded.status();
  }
  return last_error;
}

}  // namespace durable
}  // namespace leopard
