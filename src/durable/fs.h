#ifndef LEOPARD_DURABLE_FS_H_
#define LEOPARD_DURABLE_FS_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "common/status.h"

namespace leopard {
namespace durable {

/// Tiny filesystem helpers shared by the WAL and checkpoint stores. All
/// paths are plain std::string; errors come back as Status (the library is
/// exception-free, so std::filesystem is always called with an error_code).

inline Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + dir + ": " +
                            ec.message());
  }
  return Status::Ok();
}

inline StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read error on " + path);
  return out;
}

/// Writes `bytes` to `path` via a sibling temp file + rename, so a crash
/// mid-write never leaves a half-written file under the final name.
inline Status WriteFileAtomic(const std::string& path,
                              const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot create " + tmp);
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::Internal("write error on " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename " + tmp + " -> " + path + ": " +
                            ec.message());
  }
  return Status::Ok();
}

}  // namespace durable
}  // namespace leopard

#endif  // LEOPARD_DURABLE_FS_H_
