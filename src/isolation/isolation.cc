#include "isolation/isolation.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace leopard {
namespace isolation {

namespace {

std::string Lower(const std::string& s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

StatusOr<IsolationLevel> ParseIsolationLevel(const std::string& text) {
  const std::string t = Lower(text);
  if (t == "rc" || t == "read_committed" || t == "read-committed") {
    return IsolationLevel::kReadCommitted;
  }
  if (t == "rr" || t == "repeatable_read" || t == "repeatable-read") {
    return IsolationLevel::kRepeatableRead;
  }
  if (t == "si" || t == "snapshot" || t == "snapshot_isolation" ||
      t == "snapshot-isolation") {
    return IsolationLevel::kSnapshotIsolation;
  }
  if (t == "ser" || t == "sr" || t == "serializable") {
    return IsolationLevel::kSerializable;
  }
  return Status::InvalidArgument("unknown isolation level '" + text + "'");
}

const char* IsolationLevelShortName(IsolationLevel il) {
  switch (il) {
    case IsolationLevel::kReadCommitted:
      return "rc";
    case IsolationLevel::kRepeatableRead:
      return "rr";
    case IsolationLevel::kSnapshotIsolation:
      return "si";
    case IsolationLevel::kSerializable:
      return "ser";
  }
  return "?";
}

StatusOr<SessionIlMap> SessionIlMap::Parse(const std::string& spec) {
  SessionIlMap out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("isolation entry '" + entry +
                                     "' is not <session>:<level>");
    }
    auto il = ParseIsolationLevel(entry.substr(colon + 1));
    if (!il.ok()) return il.status();
    const std::string sess = entry.substr(0, colon);
    if (sess == "*") {
      out.SetDefault(*il);
      continue;
    }
    char* end = nullptr;
    const unsigned long id = std::strtoul(sess.c_str(), &end, 10);
    if (sess.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad session id '" + sess + "'");
    }
    out.Set(static_cast<ClientId>(id), *il);
  }
  return out;
}

std::string SessionIlMap::ToString() const {
  std::vector<ClientId> ids;
  ids.reserve(map_.size());
  for (const auto& [id, il] : map_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::ostringstream os;
  os << "*:" << IsolationLevelShortName(default_);
  for (ClientId id : ids) {
    os << "," << id << ":" << IsolationLevelShortName(map_.at(id));
  }
  return os.str();
}

void ApplyIlTags(const SessionIlMap& map, std::vector<Trace>& traces) {
  for (Trace& t : traces) {
    if (t.il != IsolationLevel::kSerializable) continue;  // explicit tag wins
    t.il = map.Get(t.client);
  }
}

}  // namespace isolation
}  // namespace leopard
