#ifndef LEOPARD_ISOLATION_ISOLATION_H_
#define LEOPARD_ISOLATION_ISOLATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace leopard {
namespace isolation {

/// Per-transaction mechanism selection (DESIGN.md §13): which of the four
/// verification mechanisms a transaction declared at a given isolation level
/// must satisfy. A mixed history runs through one Leopard instance whose
/// VerifierConfig enables the *union* of the mechanisms any session needs;
/// per-transaction the verifier then judges each txn only by its own level's
/// subset, so a weaker session is never false-positived against a stronger
/// session's rules:
///
///   RC       -> statement-level CR only
///   RR / SI  -> transaction-level CR + ME + FUW
///   SER      -> the above + SC (the serialization certifier)
enum MechanismMask : uint8_t {
  kMechCr = 1u << 0,
  kMechMe = 1u << 1,
  kMechFuw = 1u << 2,
  kMechSc = 1u << 3,
};

/// The mechanism subset a transaction at `il` must satisfy.
constexpr uint8_t MaskForIsolation(IsolationLevel il) {
  switch (il) {
    case IsolationLevel::kReadCommitted:
      return kMechCr;
    case IsolationLevel::kRepeatableRead:
    case IsolationLevel::kSnapshotIsolation:
      return kMechCr | kMechMe | kMechFuw;
    case IsolationLevel::kSerializable:
      return kMechCr | kMechMe | kMechFuw | kMechSc;
  }
  return kMechCr | kMechMe | kMechFuw | kMechSc;
}

/// Statement-level consistent read: RC sessions snapshot per statement even
/// when the run-wide config is transaction-level.
constexpr bool IlStatementLevelCr(IsolationLevel il) {
  return il == IsolationLevel::kReadCommitted;
}

/// Mutual exclusion binds a conflicting pair only when *both* holders
/// promised transaction-scope locking (>= RR); an RC session's statement
/// locks legitimately interleave with anyone.
constexpr bool IlRequiresMe(IsolationLevel il) {
  return il >= IsolationLevel::kRepeatableRead;
}

/// First-updater-wins applies between snapshot-scope writers (>= RR); a
/// concurrent update against an RC writer is not a lost-update anomaly at
/// RC's contract.
constexpr bool IlRequiresFuw(IsolationLevel il) {
  return il >= IsolationLevel::kRepeatableRead;
}

/// Only SERIALIZABLE transactions enter the serialization certifier's
/// dependency graph: a cycle through a weaker session is not a violation of
/// anything that session promised.
constexpr bool IlRequiresSc(IsolationLevel il) {
  return il == IsolationLevel::kSerializable;
}

/// Parses "rc" / "rr" / "si" / "ser" (also full names, case-insensitive).
StatusOr<IsolationLevel> ParseIsolationLevel(const std::string& text);

/// Short lowercase name ("rc" / "rr" / "si" / "ser") for CLI/statusz output.
const char* IsolationLevelShortName(IsolationLevel il);

/// Session -> isolation level map with a spec-string parser for CLI use:
///   "0:rc,1:si,2:ser"  per-session levels (unlisted sessions get default)
///   "*:rc"             sets the default for every unlisted session
class SessionIlMap {
 public:
  /// Parses a spec as above. Entries may repeat; the last wins.
  static StatusOr<SessionIlMap> Parse(const std::string& spec);

  void Set(ClientId client, IsolationLevel il) { map_[client] = il; }
  void SetDefault(IsolationLevel il) { default_ = il; }

  IsolationLevel Get(ClientId client) const {
    auto it = map_.find(client);
    return it != map_.end() ? it->second : default_;
  }
  IsolationLevel default_level() const { return default_; }
  bool empty() const {
    return map_.empty() && default_ == IsolationLevel::kSerializable;
  }
  const std::unordered_map<ClientId, IsolationLevel>& entries() const {
    return map_;
  }

  /// Canonical spec string ("*:si,0:rc,3:ser"), sessions in ascending order.
  std::string ToString() const;

 private:
  std::unordered_map<ClientId, IsolationLevel> map_;
  IsolationLevel default_ = IsolationLevel::kSerializable;
};

/// Stamps every trace of `traces` with its client's isolation level from
/// `map`. Explicit non-SER tags already on a trace win over the map (a
/// record-level tag is more specific than a session-level default).
void ApplyIlTags(const SessionIlMap& map, std::vector<Trace>& traces);

}  // namespace isolation
}  // namespace leopard

#endif  // LEOPARD_ISOLATION_ISOLATION_H_
