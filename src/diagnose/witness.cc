#include "diagnose/witness.h"

#include <algorithm>
#include <sstream>

#include "verifier/leopard.h"

namespace leopard::diagnose {

namespace {

void AppendOpLine(std::ostringstream& os, const BugOp& op) {
  os << "  t" << op.txn << " " << op.role;
  if (op.has_value) os << " key=" << op.key << " value=" << op.value;
  os << " over [" << op.interval.bef << ", " << op.interval.aft << "] ("
     << (op.committed ? "committed" : "not committed") << ")\n";
}

}  // namespace

std::string BuildExplanation(const BugDescriptor& bug) {
  std::ostringstream os;
  switch (bug.type) {
    case BugType::kCrViolation:
      os << "Consistent-read violation on key " << bug.key
         << ": the observed value is compatible with no candidate version "
            "of the reader's snapshot interval.\n";
      break;
    case BugType::kMeViolation:
      os << "Mutual-exclusion violation on key " << bug.key
         << ": two incompatible lock holds overlap in every possible "
            "ordering of their acquire/release intervals.\n";
      break;
    case BugType::kFuwViolation:
      os << "First-updater-wins violation on key " << bug.key
         << ": two committed updates were concurrent (each snapshot "
            "interval overlaps the other's commit), so one update was "
            "lost.\n";
      break;
    case BugType::kScViolation:
      os << "Serialization-certifier violation: the deduced dependencies "
            "admit no serial order.\n";
      break;
  }
  os << bug.detail << "\n";
  if (!bug.ops.empty()) {
    os << "Involved operations:\n";
    for (const BugOp& op : bug.ops) AppendOpLine(os, op);
  }
  if (!bug.edges.empty()) {
    os << "Dependency edges:\n";
    for (const BugEdge& e : bug.edges) {
      os << "  t" << e.from << " --" << DepTypeName(e.type) << "--> t"
         << e.to << "\n";
    }
  }
  return os.str();
}

StatusOr<Diagnosis> Explain(const VerifierConfig& config,
                            std::vector<Trace> minimized,
                            const BugDescriptor& target) {
  std::stable_sort(minimized.begin(), minimized.end(),
                   [](const Trace& a, const Trace& b) {
                     return a.ts_bef() < b.ts_bef();
                   });
  Leopard verifier(config);
  for (const Trace& t : minimized) verifier.Process(t);
  verifier.Finish();
  const BugDescriptor* match = nullptr;
  for (const BugDescriptor& bug : verifier.bugs()) {
    if (MatchesTarget(bug, target)) {
      match = &bug;
      break;
    }
  }
  if (match == nullptr) {
    return Status::FailedPrecondition(
        "trace does not reproduce the target violation (" +
        std::string(BugTypeName(target.type)) + " on key " +
        std::to_string(target.key) + ")");
  }
  Diagnosis d;
  d.bug = *match;
  d.config = config;
  d.original_traces = minimized.size();
  d.original_txns = d.minimized_txns = CountTxns(minimized);
  d.minimized = std::move(minimized);
  d.explanation = BuildExplanation(d.bug);
  return d;
}

StatusOr<Diagnosis> Diagnose(const VerifierConfig& config,
                             std::vector<Trace> traces,
                             const BugDescriptor& target,
                             const MinimizeOptions& opts) {
  const uint64_t original_traces = traces.size();
  const uint64_t original_txns = CountTxns(traces);
  TraceMinimizer minimizer(config, opts);
  StatusOr<MinimizeResult> minimized =
      minimizer.Minimize(std::move(traces), target);
  if (!minimized.ok()) return minimized.status();
  MinimizeResult& r = *minimized;

  Diagnosis d;
  d.bug = std::move(r.bug);
  d.config = config;
  d.minimized = std::move(r.traces);
  d.original_traces = original_traces;
  d.original_txns = original_txns;
  d.minimized_txns = CountTxns(d.minimized);
  d.oracle_runs = r.oracle_runs;
  d.txns_removed = r.txns_removed;
  d.ops_removed = r.ops_removed;
  d.budget_exhausted = r.budget_exhausted;
  d.explanation = BuildExplanation(d.bug);
  return d;
}

}  // namespace leopard::diagnose
