#ifndef LEOPARD_DIAGNOSE_MINIMIZER_H_
#define LEOPARD_DIAGNOSE_MINIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"
#include "trace/trace.h"
#include "verifier/bug.h"
#include "verifier/config.h"

namespace leopard::diagnose {

/// Tuning for TraceMinimizer. Every candidate subset costs one full
/// single-shard verification of the (shrinking) trace, so the budget bounds
/// total work; when it runs out the smallest failing trace found so far is
/// returned with `budget_exhausted` set.
struct MinimizeOptions {
  uint64_t max_oracle_runs = 512;
  /// After transaction-granularity ddmin, greedily drop individual
  /// operations (read/write statements) of the surviving transactions.
  bool minimize_ops = true;
  /// When set, diagnose.oracle_runs / diagnose.txns_removed /
  /// diagnose.ops_removed counters are bumped. Must outlive the minimizer.
  obs::MetricsRegistry* metrics = nullptr;
};

struct MinimizeResult {
  /// The minimized failing trace, in global ts_bef order (a valid single
  /// client stream for replay).
  std::vector<Trace> traces;
  /// The violation the minimized trace reproduces (same BugType and key as
  /// the minimization target), with its structured ops/edges witness.
  BugDescriptor bug;
  uint64_t oracle_runs = 0;
  uint64_t txns_removed = 0;
  uint64_t ops_removed = 0;
  bool budget_exhausted = false;
};

/// True when `bug` reproduces `target`: same mechanism and same record.
/// Transaction ids are deliberately not compared — a subset trace may
/// surface the same anomaly through a different (smaller) participant set.
bool MatchesTarget(const BugDescriptor& bug, const BugDescriptor& target);

/// Distinct transaction count of a trace (the initial-load pseudo-txn is
/// not counted).
uint64_t CountTxns(const std::vector<Trace>& traces);

/// Delta-debugging minimizer (ddmin): shrinks a failing trace at
/// transaction granularity — always keeping the initial-load pseudo-txn —
/// then at operation granularity within the survivors. The oracle is a
/// fresh single-shard Leopard run over the candidate subset; a candidate
/// "fails" when it still produces a violation with the target's BugType and
/// key. On completion (within budget) the result is 1-minimal: removing any
/// single remaining transaction makes the trace verify clean.
class TraceMinimizer {
 public:
  TraceMinimizer(const VerifierConfig& config, MinimizeOptions opts = {});

  /// `traces` need not be sorted; they are put in ts_bef order first.
  /// Fails with kFailedPrecondition when the input does not reproduce
  /// `target` at all.
  StatusOr<MinimizeResult> Minimize(std::vector<Trace> traces,
                                    const BugDescriptor& target);

 private:
  bool OracleFails(const std::vector<Trace>& traces,
                   const BugDescriptor& target, BugDescriptor* match,
                   MinimizeResult& result);

  VerifierConfig config_;
  MinimizeOptions opts_;
};

}  // namespace leopard::diagnose

#endif  // LEOPARD_DIAGNOSE_MINIMIZER_H_
