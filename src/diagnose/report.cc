#include "diagnose/report.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include "trace/trace_io.h"
#include "verifier/dependency_graph.h"

namespace leopard::diagnose {

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string DiagnosisToJson(const Diagnosis& d) {
  std::ostringstream os;
  const BugDescriptor& bug = d.bug;
  os << "{\n  \"bug\": {\n";
  os << "    \"type\": \"" << BugTypeName(bug.type) << "\",\n";
  os << "    \"key\": " << bug.key << ",\n";
  os << "    \"ts\": " << bug.ts << ",\n";
  os << "    \"txns\": [";
  for (size_t i = 0; i < bug.txns.size(); ++i) {
    if (i) os << ", ";
    os << bug.txns[i];
  }
  os << "],\n    \"detail\": ";
  AppendJsonString(os, bug.detail);
  os << ",\n    \"ops\": [";
  for (size_t i = 0; i < bug.ops.size(); ++i) {
    const BugOp& op = bug.ops[i];
    os << (i ? "," : "") << "\n      {\"txn\": " << op.txn << ", \"role\": ";
    AppendJsonString(os, op.role);
    os << ", \"key\": " << op.key;
    if (op.has_value) os << ", \"value\": " << op.value;
    os << ", \"ts_bef\": " << op.interval.bef
       << ", \"ts_aft\": " << op.interval.aft
       << ", \"committed\": " << (op.committed ? "true" : "false") << "}";
  }
  os << (bug.ops.empty() ? "]" : "\n    ]") << ",\n    \"edges\": [";
  for (size_t i = 0; i < bug.edges.size(); ++i) {
    const BugEdge& e = bug.edges[i];
    os << (i ? "," : "") << "\n      {\"from\": " << e.from
       << ", \"to\": " << e.to << ", \"type\": \"" << DepTypeName(e.type)
       << "\"}";
  }
  os << (bug.edges.empty() ? "]" : "\n    ]") << "\n  },\n";
  os << "  \"minimize\": {\n";
  os << "    \"original_traces\": " << d.original_traces << ",\n";
  os << "    \"original_txns\": " << d.original_txns << ",\n";
  os << "    \"minimized_traces\": " << d.minimized.size() << ",\n";
  os << "    \"minimized_txns\": " << d.minimized_txns << ",\n";
  os << "    \"oracle_runs\": " << d.oracle_runs << ",\n";
  os << "    \"txns_removed\": " << d.txns_removed << ",\n";
  os << "    \"ops_removed\": " << d.ops_removed << ",\n";
  os << "    \"budget_exhausted\": "
     << (d.budget_exhausted ? "true" : "false") << "\n  },\n";
  os << "  \"explanation\": ";
  AppendJsonString(os, d.explanation);
  os << "\n}\n";
  return os.str();
}

std::string DiagnosisToDot(const Diagnosis& d) {
  const BugDescriptor& bug = d.bug;
  std::ostringstream os;
  os << "digraph conflict {\n";
  os << "  label=\"" << BugTypeName(bug.type) << " key=" << bug.key
     << "\";\n  node [shape=box];\n";
  // One node per involved transaction; its label lists the ops the witness
  // attributes to it, with their interval endpoints.
  for (TxnId txn : bug.txns) {
    os << "  t" << txn << " [label=\"t" << txn;
    for (const BugOp& op : bug.ops) {
      if (op.txn != txn) continue;
      os << "\\n" << op.role;
      if (op.has_value) os << " k" << op.key << "=" << op.value;
      os << " [" << op.interval.bef << "," << op.interval.aft << "]";
    }
    os << "\"];\n";
  }
  if (!bug.edges.empty()) {
    for (const BugEdge& e : bug.edges) {
      os << "  t" << e.from << " -> t" << e.to << " [label=\""
         << DepTypeName(e.type) << "\"];\n";
    }
  } else {
    // CR/ME/FUW: no dependency cycle — render the interval conflict as a
    // dashed undirected edge between the conflicting transactions.
    for (size_t i = 0; i + 1 < bug.txns.size(); ++i) {
      os << "  t" << bug.txns[i] << " -> t" << bug.txns[i + 1]
         << " [dir=none, style=dashed, label=\"conflict key " << bug.key
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

StatusOr<ArtifactPaths> WriteDiagnosisArtifacts(const Diagnosis& d,
                                                const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + out_dir + ": " + ec.message());
  }
  ArtifactPaths paths;
  paths.json_path = out_dir + "/diagnosis.json";
  paths.dot_path = out_dir + "/conflict.dot";
  paths.trace_path = out_dir + "/leopard_client_0.trc";

  auto write_text = [](const std::string& path,
                       const std::string& body) -> Status {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return Status::Internal("cannot write " + path);
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok) return Status::Internal("short write to " + path);
    return Status::Ok();
  };
  if (Status s = write_text(paths.json_path, DiagnosisToJson(d)); !s.ok()) {
    return s;
  }
  if (Status s = write_text(paths.dot_path, DiagnosisToDot(d)); !s.ok()) {
    return s;
  }
  if (Status s = WriteTraceFile(paths.trace_path, d.minimized); !s.ok()) {
    return s;
  }
  return paths;
}

}  // namespace leopard::diagnose
