#ifndef LEOPARD_DIAGNOSE_WITNESS_H_
#define LEOPARD_DIAGNOSE_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "diagnose/minimizer.h"
#include "trace/trace.h"
#include "verifier/bug.h"
#include "verifier/config.h"

namespace leopard::diagnose {

/// The canonical diagnosis record: a minimized, replayable trace plus the
/// structured witness of why it violates the mechanism — the SC dependency
/// cycle with its deduced wr/ww/rw edge kinds, or the CR/ME/FUW interval
/// conflict with the `[ts_bef, ts_aft]` endpoints that admit no compatible
/// ordering. This record (not the free-text `detail`) is what the artifact
/// exporters and the v2 wire payload serialize.
struct Diagnosis {
  BugDescriptor bug;             ///< structured witness (ops + edges)
  std::vector<Trace> minimized;  ///< ts_bef-sorted, replayable via trace_io
  VerifierConfig config;         ///< the configuration that flags the bug

  // Minimization provenance.
  uint64_t original_traces = 0;
  uint64_t original_txns = 0;
  uint64_t minimized_txns = 0;
  uint64_t oracle_runs = 0;
  uint64_t txns_removed = 0;
  uint64_t ops_removed = 0;
  bool budget_exhausted = false;

  /// Multi-line human explanation derived from the structured witness.
  std::string explanation;
};

/// Renders the mechanism-specific explanation of a structured bug: which
/// operations conflict, their interval endpoints, and (for SC) the cycle.
std::string BuildExplanation(const BugDescriptor& bug);

/// Re-runs `minimized` through a fresh single-shard verifier, captures the
/// structured BugDescriptor matching `target`, and wraps it into a
/// Diagnosis (no minimization — use this when the trace is already small).
StatusOr<Diagnosis> Explain(const VerifierConfig& config,
                            std::vector<Trace> minimized,
                            const BugDescriptor& target);

/// End-to-end: minimize `traces` against `target` (ddmin, see
/// TraceMinimizer), then explain the survivor. The returned Diagnosis
/// carries both the witness and the minimization provenance.
StatusOr<Diagnosis> Diagnose(const VerifierConfig& config,
                             std::vector<Trace> traces,
                             const BugDescriptor& target,
                             const MinimizeOptions& opts = {});

}  // namespace leopard::diagnose

#endif  // LEOPARD_DIAGNOSE_WITNESS_H_
