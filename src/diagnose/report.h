#ifndef LEOPARD_DIAGNOSE_REPORT_H_
#define LEOPARD_DIAGNOSE_REPORT_H_

#include <string>

#include "common/status.h"
#include "diagnose/witness.h"

namespace leopard::diagnose {

/// JSON rendering of a Diagnosis: the structured bug (type, key, txns, ops
/// with interval endpoints, edges), minimization provenance, and the
/// explanation text. Self-contained — no external JSON library.
std::string DiagnosisToJson(const Diagnosis& d);

/// Graphviz DOT rendering of the conflict subgraph: one node per involved
/// transaction (labelled with its interval endpoints), the deduced
/// dependency edges for SC violations, and dashed conflict edges between
/// the interval-conflicting pair for CR/ME/FUW.
std::string DiagnosisToDot(const Diagnosis& d);

struct ArtifactPaths {
  std::string json_path;   ///< <out_dir>/diagnosis.json
  std::string dot_path;    ///< <out_dir>/conflict.dot
  std::string trace_path;  ///< <out_dir>/leopard_client_0.trc
};

/// Writes the three repro artifacts under `out_dir` (created when missing).
/// The minimized trace uses the trace_io codec and the CLI's single-client
/// file name, so `leopard verify --in=<out_dir> --clients=1` replays it
/// directly.
StatusOr<ArtifactPaths> WriteDiagnosisArtifacts(const Diagnosis& d,
                                                const std::string& out_dir);

}  // namespace leopard::diagnose

#endif  // LEOPARD_DIAGNOSE_REPORT_H_
