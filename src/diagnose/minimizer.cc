#include "diagnose/minimizer.h"

#include <algorithm>
#include <unordered_set>

#include "verifier/leopard.h"

namespace leopard::diagnose {

namespace {

/// Stable ts_bef order: the dispatch order a single verifier (and the CLI
/// replay path) feeds traces in.
void SortByTsBef(std::vector<Trace>& traces) {
  std::stable_sort(traces.begin(), traces.end(),
                   [](const Trace& a, const Trace& b) {
                     return a.ts_bef() < b.ts_bef();
                   });
}

std::vector<Trace> FilterTxns(const std::vector<Trace>& traces,
                              const std::unordered_set<TxnId>& keep) {
  std::vector<Trace> out;
  out.reserve(traces.size());
  for (const Trace& t : traces) {
    if (t.txn == kLoadTxnId || keep.contains(t.txn)) out.push_back(t);
  }
  return out;
}

}  // namespace

bool MatchesTarget(const BugDescriptor& bug, const BugDescriptor& target) {
  return bug.type == target.type && bug.key == target.key;
}

uint64_t CountTxns(const std::vector<Trace>& traces) {
  std::unordered_set<TxnId> ids;
  for (const Trace& t : traces) {
    if (t.txn != kLoadTxnId) ids.insert(t.txn);
  }
  return ids.size();
}

TraceMinimizer::TraceMinimizer(const VerifierConfig& config,
                               MinimizeOptions opts)
    : config_(config), opts_(opts) {}

bool TraceMinimizer::OracleFails(const std::vector<Trace>& traces,
                                 const BugDescriptor& target,
                                 BugDescriptor* match,
                                 MinimizeResult& result) {
  ++result.oracle_runs;
  Leopard oracle(config_);
  for (const Trace& t : traces) oracle.Process(t);
  oracle.Finish();
  for (const BugDescriptor& bug : oracle.bugs()) {
    if (MatchesTarget(bug, target)) {
      if (match != nullptr) *match = bug;
      return true;
    }
  }
  return false;
}

StatusOr<MinimizeResult> TraceMinimizer::Minimize(std::vector<Trace> traces,
                                                  const BugDescriptor& target) {
  MinimizeResult result;
  SortByTsBef(traces);
  if (!OracleFails(traces, target, &result.bug, result)) {
    return Status::FailedPrecondition(
        "trace does not reproduce the target violation (" +
        std::string(BugTypeName(target.type)) + " on key " +
        std::to_string(target.key) + ")");
  }

  // Transaction ids in first-appearance order (ddmin chunks are then
  // roughly chronological, which shrinks fastest for planted faults).
  std::vector<TxnId> kept;
  {
    std::unordered_set<TxnId> seen;
    for (const Trace& t : traces) {
      if (t.txn != kLoadTxnId && seen.insert(t.txn).second) {
        kept.push_back(t.txn);
      }
    }
  }

  auto out_of_budget = [&]() {
    return result.oracle_runs >= opts_.max_oracle_runs;
  };

  // --- ddmin at transaction granularity -----------------------------------
  // Classic delta debugging over the complement sets: try dropping each of
  // n chunks; on success restart with the reduced set, otherwise double the
  // granularity until chunks are single transactions.
  size_t n = 2;
  while (kept.size() >= 2 && !out_of_budget()) {
    n = std::min(n, kept.size());
    const size_t chunk = (kept.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < kept.size() && !out_of_budget();
         start += chunk) {
      const size_t end = std::min(start + chunk, kept.size());
      std::unordered_set<TxnId> keep_set(kept.begin(), kept.end());
      for (size_t i = start; i < end; ++i) keep_set.erase(kept[i]);
      if (keep_set.empty()) continue;  // dropping everything never fails
      std::vector<Trace> candidate = FilterTxns(traces, keep_set);
      BugDescriptor match;
      if (OracleFails(candidate, target, &match, result)) {
        result.txns_removed += end - start;
        result.bug = std::move(match);
        kept.erase(kept.begin() + static_cast<ptrdiff_t>(start),
                   kept.begin() + static_cast<ptrdiff_t>(end));
        traces = std::move(candidate);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= kept.size()) break;  // 1-minimal at txn granularity
      n = std::min(kept.size(), n * 2);
    }
  }

  // --- greedy operation-granularity pass ----------------------------------
  // Drop individual read/write statements of the survivors (terminals and
  // the initial load stay: removing a terminal is removing the txn, which
  // ddmin already ruled out). Repeat to a fixpoint: a removal can unlock
  // further removals.
  if (opts_.minimize_ops) {
    bool changed = true;
    while (changed && !out_of_budget()) {
      changed = false;
      for (size_t i = 0; i < traces.size() && !out_of_budget(); ++i) {
        const Trace& t = traces[i];
        if (t.txn == kLoadTxnId ||
            (t.op != OpType::kRead && t.op != OpType::kWrite)) {
          continue;
        }
        std::vector<Trace> candidate;
        candidate.reserve(traces.size() - 1);
        candidate.insert(candidate.end(), traces.begin(),
                         traces.begin() + static_cast<ptrdiff_t>(i));
        candidate.insert(candidate.end(),
                         traces.begin() + static_cast<ptrdiff_t>(i) + 1,
                         traces.end());
        BugDescriptor match;
        if (OracleFails(candidate, target, &match, result)) {
          ++result.ops_removed;
          result.bug = std::move(match);
          traces = std::move(candidate);
          changed = true;
          --i;  // the next trace shifted into slot i
        }
      }
    }
  }

  result.budget_exhausted = out_of_budget();
  result.traces = std::move(traces);
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("diagnose.oracle_runs")->Inc(result.oracle_runs);
    opts_.metrics->counter("diagnose.txns_removed")->Inc(result.txns_removed);
    opts_.metrics->counter("diagnose.ops_removed")->Inc(result.ops_removed);
  }
  return result;
}

}  // namespace leopard::diagnose
