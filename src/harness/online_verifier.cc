#include "harness/online_verifier.h"

#include <cassert>
#include <utility>

#include "obs/watchdog.h"

namespace leopard {

namespace {

ShardedLeopard::Options EngineOptions(const OnlineVerifier::Options& options) {
  ShardedLeopard::Options eo;
  eo.n_shards = options.n_shards;
  eo.n_workers = options.n_workers;
  eo.enable_rebalance = options.enable_rebalance;
  eo.metrics = options.obs.metrics;
  eo.span_sample_every = options.obs.span_sample_every;
  eo.events = options.obs.events;
  eo.watchdog = options.obs.watchdog;
  return eo;
}

}  // namespace

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config)
    : OnlineVerifier(n_clients, config, Options()) {}

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config,
                               const ObsOptions& obs_options)
    : OnlineVerifier(n_clients, config, [&obs_options] {
        Options o;
        o.obs = obs_options;
        return o;
      }()) {}

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config,
                               const Options& options)
    : pipeline_(n_clients),
      engine_(config, EngineOptions(options)),
      n_clients_(n_clients),
      open_clients_(n_clients),
      client_closed_(n_clients, 0),
      sealed_(!options.dynamic_clients),
      on_bug_(options.on_bug),
      metrics_(options.obs.metrics),
      watchdog_(options.obs.watchdog),
      worker_([this] { Loop(); }) {
  if (metrics_ != nullptr) {
    {
      // The worker thread is already running; attach under the lock so it
      // never observes half-initialized metric handles. (The engine's own
      // metrics were attached in its constructor, before the worker
      // existed.)
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_.AttachMetrics(metrics_, options.obs.span_sample_every);
    }
    if (options.obs.progress_interval_ms > 0) {
      obs::ProgressReporter::Options po;
      po.interval_ms = options.obs.progress_interval_ms;
      po.print = options.obs.print_progress;
      po.registry = metrics_;
      reporter_ = std::make_unique<obs::ProgressReporter>(
          po, [this] { return SampleProgress(); });
    }
  }
}

OnlineVerifier::~OnlineVerifier() {
  // Force-close any stream the caller forgot, so the worker can drain and
  // terminate (Close is idempotent per client; SealClients stops a dynamic
  // run from waiting for sessions that will never come).
  SealClients();
  uint32_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = n_clients_;
  }
  for (ClientId c = 0; c < n; ++c) Close(c);
  WaitFinished();
  worker_.join();
  // Stop after the worker: the final reporter sample then reflects the
  // fully-drained state.
  if (reporter_ != nullptr) reporter_->Stop();
}

obs::ProgressSnapshot OnlineVerifier::SampleProgress() const {
  // Everything here is an atomic read: verified_ directly, the rest via the
  // registry counters the verifier thread mirrors its stats into. The
  // verifier thread is never blocked by a progress tick.
  obs::ProgressSnapshot s = obs::SnapshotFromRegistry(*metrics_);
  // The stats mirror refreshes every few traces; our own atomic is exact.
  s.verified = verified_.load(std::memory_order_relaxed);
  return s;
}

void OnlineVerifier::Push(ClientId client, Trace trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Push(client, std::move(trace));
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::Close(ClientId client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (client >= n_clients_ || client_closed_[client]) return;
    client_closed_[client] = 1;
    pipeline_.Close(client);
    --open_clients_;
  }
  producer_cv_.notify_one();
}

StatusOr<OnlineVerifier::AddedClient> OnlineVerifier::AddClient() {
  AddedClient added;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sealed_) {
      return Status::FailedPrecondition(
          "AddClient() requires Options::dynamic_clients and must precede "
          "SealClients()");
    }
    added.id = pipeline_.AddClient();
    added.floor = pipeline_.dispatch_floor();
    client_closed_.push_back(0);
    n_clients_ = static_cast<uint32_t>(client_closed_.size());
    ++open_clients_;
  }
  producer_cv_.notify_one();
  return added;
}

StatusOr<OnlineVerifier::AddedClient> OnlineVerifier::ReopenClient(
    ClientId client) {
  AddedClient reopened;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sealed_) {
      return Status::FailedPrecondition(
          "ReopenClient() requires Options::dynamic_clients and must precede "
          "SealClients()");
    }
    if (client >= n_clients_) {
      return Status::InvalidArgument("ReopenClient: unknown client");
    }
    if (!client_closed_[client]) {
      return Status::FailedPrecondition("ReopenClient: client still open");
    }
    client_closed_[client] = 0;
    reopened.id = client;
    reopened.floor = pipeline_.Reopen(client);
    ++open_clients_;
  }
  producer_cv_.notify_one();
  return reopened;
}

void OnlineVerifier::SealClients() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed_ = true;
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::WaitFinished() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return finished_; });
}

const Leopard& OnlineVerifier::Wait() {
  assert(engine_.n_shards() == 1 &&
         "Wait() returns the single-threaded verifier; sharded runs must "
         "use WaitReport()");
  WaitFinished();
  return engine_.single();
}

const VerifyReport& OnlineVerifier::WaitReport() {
  WaitFinished();
  return engine_.report();
}

void OnlineVerifier::Loop() {
  obs::Watchdog::Slot* wd =
      watchdog_ != nullptr ? watchdog_->Register("dispatcher") : nullptr;
  std::vector<Trace> batch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (wd != nullptr) wd->Beat();
    if (ckpt_requested_) {
      // Checkpoint safepoint: every trace dispatched so far is verified and
      // the batch is empty (this is the loop top) — park here until the
      // checkpointer serializes and releases us. Idleness, not a wedge.
      ckpt_parked_ = true;
      ckpt_cv_.notify_all();
      if (wd != nullptr) wd->Suspend();
      producer_cv_.wait(lock, [this] { return !ckpt_requested_; });
      if (wd != nullptr) wd->Resume();
      ckpt_parked_ = false;
    }
    // Drain everything currently dispatchable into a local batch, then
    // release the lock before verifying: producers only ever contend with
    // the short Dispatch drain, never with Process(). This is the online
    // hot path — holding mu_ across verification would stall every Push()
    // behind whole verification batches.
    while (auto trace = pipeline_.Dispatch()) {
      batch.push_back(std::move(*trace));
    }
    if (!batch.empty()) {
      lock.unlock();
      for (Trace& trace : batch) {
        const uint64_t bytes = trace.ApproxBytes();
        engine_.Process(trace);
        verified_.fetch_add(1, std::memory_order_relaxed);
        verified_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      }
      // Single-shard verification happens inline in Process, so any bug it
      // found is visible now — stream it while the producers still run.
      if (on_bug_ && engine_.n_shards() == 1) {
        DeliverNewBugs(engine_.single().bugs());
      }
      batch.clear();
      lock.lock();
      continue;  // input may have arrived while we were verifying
    }
    if (sealed_ && open_clients_ == 0 && pipeline_.Exhausted()) break;
    // The wait is unbounded by design (producers may legitimately pause for
    // hours); tell the watchdog this is idleness, not a wedge.
    if (wd != nullptr) wd->Suspend();
    producer_cv_.wait(lock);
    if (wd != nullptr) wd->Resume();
  }
  // Finish() may join shard worker threads — never run it under mu_. The
  // join can outlast the stall threshold on a deep final drain; the shard
  // workers keep their own heartbeats, so suspend the dispatcher's.
  // draining_ tells a checkpointer racing this exit that its safepoint will
  // never be reached — SaveState fails instead of hanging.
  draining_ = true;
  ckpt_cv_.notify_all();
  if (wd != nullptr) wd->Suspend();
  lock.unlock();
  engine_.Finish();
  // Sharded workers and the certifier only surface their bugs in the
  // aggregated report; deliver the remainder exactly once, before anyone
  // blocked in WaitReport() wakes up.
  if (on_bug_) DeliverNewBugs(engine_.report().bugs);
  lock.lock();
  finished_ = true;
  if (watchdog_ != nullptr) watchdog_->Retire(wd);
  done_cv_.notify_all();
}

void OnlineVerifier::DeliverNewBugs(const std::vector<BugDescriptor>& bugs) {
  while (bugs_delivered_ < bugs.size()) on_bug_(bugs[bugs_delivered_++]);
}

uint64_t OnlineVerifier::ApproxBufferedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pipeline_.buffered_bytes();
}

uint32_t OnlineVerifier::client_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return n_clients_;
}

Status OnlineVerifier::SaveState(StateWriter& w) {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_ || draining_) {
    return Status::FailedPrecondition(
        "verifier already draining; the final report supersedes checkpoints");
  }
  ckpt_requested_ = true;
  producer_cv_.notify_all();
  ckpt_cv_.wait(lock,
                [this] { return ckpt_parked_ || draining_ || finished_; });
  if (!ckpt_parked_) {
    // The dispatcher slipped into its final drain before parking.
    ckpt_requested_ = false;
    return Status::FailedPrecondition(
        "verifier drained before reaching the checkpoint safepoint");
  }
  // Safepoint reached: the dispatcher is parked with an empty batch, so the
  // engine has applied every dispatched trace. Quiesce flushes the sharded
  // engine's queues; producers block on mu_ for the duration.
  engine_.Quiesce();
  w.PutU32(n_clients_);
  for (uint8_t closed : client_closed_) w.PutBool(closed != 0);
  w.PutBool(sealed_);
  w.PutU64(verified_.load(std::memory_order_relaxed));
  w.PutU64(verified_bytes_.load(std::memory_order_relaxed));
  w.PutU64(static_cast<uint64_t>(bugs_delivered_));
  pipeline_.SaveState(w);
  engine_.SaveState(w);
  engine_.ResumeFromQuiesce();
  ckpt_requested_ = false;
  lock.unlock();
  producer_cv_.notify_all();
  return Status::Ok();
}

Status OnlineVerifier::LoadState(StateReader& r) {
  std::unique_lock<std::mutex> lock(mu_);
  if (finished_ || draining_) {
    return Status::FailedPrecondition("verifier already draining");
  }
  ckpt_requested_ = true;
  producer_cv_.notify_all();
  ckpt_cv_.wait(lock,
                [this] { return ckpt_parked_ || draining_ || finished_; });
  if (!ckpt_parked_) {
    ckpt_requested_ = false;
    return Status::FailedPrecondition(
        "verifier drained before state could be restored");
  }
  engine_.Quiesce();
  Status s;
  uint32_t n_clients = 0;
  if ((s = r.GetU32(n_clients)).ok()) {
    if (!r.CountFits(n_clients, 1)) {
      s = Status::InvalidArgument("verifier state: absurd client count");
    }
  }
  if (s.ok()) {
    client_closed_.assign(n_clients, 0);
    for (uint32_t i = 0; i < n_clients && s.ok(); ++i) {
      bool closed = false;
      if ((s = r.GetBool(closed)).ok()) client_closed_[i] = closed ? 1 : 0;
    }
  }
  uint64_t verified = 0;
  uint64_t verified_bytes = 0;
  uint64_t delivered = 0;
  if (s.ok()) s = r.GetBool(sealed_);
  if (s.ok()) s = r.GetU64(verified);
  if (s.ok()) s = r.GetU64(verified_bytes);
  if (s.ok()) s = r.GetU64(delivered);
  if (s.ok()) s = pipeline_.LoadState(r);
  if (s.ok()) s = engine_.LoadState(r);
  if (s.ok()) {
    n_clients_ = n_clients;
    verified_.store(verified, std::memory_order_relaxed);
    verified_bytes_.store(verified_bytes, std::memory_order_relaxed);
    bugs_delivered_ = static_cast<size_t>(delivered);
    open_clients_ = 0;
    for (uint8_t closed : client_closed_) {
      if (!closed) ++open_clients_;
    }
  }
  engine_.ResumeFromQuiesce();
  ckpt_requested_ = false;
  lock.unlock();
  producer_cv_.notify_all();
  return s;
}

}  // namespace leopard
