#include "harness/online_verifier.h"

#include <cassert>
#include <utility>

namespace leopard {

namespace {

ShardedLeopard::Options EngineOptions(const OnlineVerifier::Options& options) {
  ShardedLeopard::Options eo;
  eo.n_shards = options.n_shards;
  eo.metrics = options.obs.metrics;
  eo.span_sample_every = options.obs.span_sample_every;
  return eo;
}

}  // namespace

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config)
    : OnlineVerifier(n_clients, config, Options()) {}

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config,
                               const ObsOptions& obs_options)
    : OnlineVerifier(n_clients, config, Options{1, obs_options}) {}

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config,
                               const Options& options)
    : pipeline_(n_clients),
      engine_(config, EngineOptions(options)),
      n_clients_(n_clients),
      open_clients_(n_clients),
      client_closed_(n_clients, 0),
      metrics_(options.obs.metrics),
      worker_([this] { Loop(); }) {
  if (metrics_ != nullptr) {
    {
      // The worker thread is already running; attach under the lock so it
      // never observes half-initialized metric handles. (The engine's own
      // metrics were attached in its constructor, before the worker
      // existed.)
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_.AttachMetrics(metrics_, options.obs.span_sample_every);
    }
    if (options.obs.progress_interval_ms > 0) {
      obs::ProgressReporter::Options po;
      po.interval_ms = options.obs.progress_interval_ms;
      po.print = options.obs.print_progress;
      po.registry = metrics_;
      reporter_ = std::make_unique<obs::ProgressReporter>(
          po, [this] { return SampleProgress(); });
    }
  }
}

OnlineVerifier::~OnlineVerifier() {
  // Force-close any stream the caller forgot, so the worker can drain and
  // terminate (Close is idempotent per client).
  for (ClientId c = 0; c < n_clients_; ++c) Close(c);
  WaitFinished();
  worker_.join();
  // Stop after the worker: the final reporter sample then reflects the
  // fully-drained state.
  if (reporter_ != nullptr) reporter_->Stop();
}

obs::ProgressSnapshot OnlineVerifier::SampleProgress() const {
  // Everything here is an atomic read: verified_ directly, the rest via the
  // registry counters the verifier thread mirrors its stats into. The
  // verifier thread is never blocked by a progress tick.
  obs::ProgressSnapshot s = obs::SnapshotFromRegistry(*metrics_);
  // The stats mirror refreshes every few traces; our own atomic is exact.
  s.verified = verified_.load(std::memory_order_relaxed);
  return s;
}

void OnlineVerifier::Push(ClientId client, Trace trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Push(client, std::move(trace));
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::Close(ClientId client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (client >= n_clients_ || client_closed_[client]) return;
    client_closed_[client] = 1;
    pipeline_.Close(client);
    --open_clients_;
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::WaitFinished() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return finished_; });
}

const Leopard& OnlineVerifier::Wait() {
  assert(engine_.n_shards() == 1 &&
         "Wait() returns the single-threaded verifier; sharded runs must "
         "use WaitReport()");
  WaitFinished();
  return engine_.single();
}

const VerifyReport& OnlineVerifier::WaitReport() {
  WaitFinished();
  return engine_.report();
}

void OnlineVerifier::Loop() {
  std::vector<Trace> batch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Drain everything currently dispatchable into a local batch, then
    // release the lock before verifying: producers only ever contend with
    // the short Dispatch drain, never with Process(). This is the online
    // hot path — holding mu_ across verification would stall every Push()
    // behind whole verification batches.
    while (auto trace = pipeline_.Dispatch()) {
      batch.push_back(std::move(*trace));
    }
    if (!batch.empty()) {
      lock.unlock();
      for (Trace& trace : batch) {
        engine_.Process(trace);
        verified_.fetch_add(1, std::memory_order_relaxed);
      }
      batch.clear();
      lock.lock();
      continue;  // input may have arrived while we were verifying
    }
    if (open_clients_ == 0 && pipeline_.Exhausted()) break;
    producer_cv_.wait(lock);
  }
  // Finish() may join shard worker threads — never run it under mu_.
  lock.unlock();
  engine_.Finish();
  lock.lock();
  finished_ = true;
  done_cv_.notify_all();
}

}  // namespace leopard
