#include "harness/online_verifier.h"

namespace leopard {

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config)
    : OnlineVerifier(n_clients, config, ObsOptions()) {}

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config,
                               const ObsOptions& obs_options)
    : pipeline_(n_clients),
      verifier_(config),
      n_clients_(n_clients),
      open_clients_(n_clients),
      metrics_(obs_options.metrics),
      worker_([this] { Loop(); }) {
  if (metrics_ != nullptr) {
    {
      // The worker thread is already running; attach under the lock so it
      // never observes half-initialized metric handles.
      std::lock_guard<std::mutex> lock(mu_);
      pipeline_.AttachMetrics(metrics_, obs_options.span_sample_every);
      verifier_.AttachMetrics(metrics_, obs_options.span_sample_every);
    }
    if (obs_options.progress_interval_ms > 0) {
      obs::ProgressReporter::Options po;
      po.interval_ms = obs_options.progress_interval_ms;
      po.print = obs_options.print_progress;
      po.registry = metrics_;
      reporter_ = std::make_unique<obs::ProgressReporter>(
          po, [this] { return SampleProgress(); });
    }
  }
}

OnlineVerifier::~OnlineVerifier() {
  {
    // Force-close any stream the caller forgot, so the worker can drain
    // and terminate (Close is idempotent).
    std::lock_guard<std::mutex> lock(mu_);
    for (ClientId c = 0; c < n_clients_; ++c) pipeline_.Close(c);
    open_clients_ = 0;
  }
  producer_cv_.notify_one();
  Wait();
  worker_.join();
  // Stop after the worker: the final reporter sample then reflects the
  // fully-drained state.
  if (reporter_ != nullptr) reporter_->Stop();
}

obs::ProgressSnapshot OnlineVerifier::SampleProgress() const {
  // Everything here is an atomic read: verified_ directly, the rest via the
  // registry counters the verifier thread mirrors its stats into. The
  // verifier thread is never blocked by a progress tick.
  obs::ProgressSnapshot s = obs::SnapshotFromRegistry(*metrics_);
  // The stats mirror refreshes every few traces; our own atomic is exact.
  s.verified = verified_.load(std::memory_order_relaxed);
  return s;
}

void OnlineVerifier::Push(ClientId client, Trace trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Push(client, std::move(trace));
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::Close(ClientId client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Close(client);
    if (open_clients_ > 0) --open_clients_;
  }
  producer_cv_.notify_one();
}

const Leopard& OnlineVerifier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return finished_; });
  return verifier_;
}

void OnlineVerifier::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Drain everything currently dispatchable. Process() runs under the
    // lock: Leopard itself is single-threaded by design, and producers only
    // contend for the short Push critical section.
    while (auto trace = pipeline_.Dispatch()) {
      verifier_.Process(*trace);
      verified_.fetch_add(1, std::memory_order_relaxed);
    }
    if (open_clients_ == 0 && pipeline_.Exhausted()) break;
    producer_cv_.wait(lock);
  }
  verifier_.Finish();
  finished_ = true;
  done_cv_.notify_all();
}

}  // namespace leopard
