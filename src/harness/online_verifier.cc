#include "harness/online_verifier.h"

namespace leopard {

OnlineVerifier::OnlineVerifier(uint32_t n_clients,
                               const VerifierConfig& config)
    : pipeline_(n_clients),
      verifier_(config),
      n_clients_(n_clients),
      open_clients_(n_clients),
      worker_([this] { Loop(); }) {}

OnlineVerifier::~OnlineVerifier() {
  {
    // Force-close any stream the caller forgot, so the worker can drain
    // and terminate (Close is idempotent).
    std::lock_guard<std::mutex> lock(mu_);
    for (ClientId c = 0; c < n_clients_; ++c) pipeline_.Close(c);
    open_clients_ = 0;
  }
  producer_cv_.notify_one();
  Wait();
  worker_.join();
}

void OnlineVerifier::Push(ClientId client, Trace trace) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Push(client, std::move(trace));
  }
  producer_cv_.notify_one();
}

void OnlineVerifier::Close(ClientId client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Close(client);
    if (open_clients_ > 0) --open_clients_;
  }
  producer_cv_.notify_one();
}

const Leopard& OnlineVerifier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return finished_; });
  return verifier_;
}

uint64_t OnlineVerifier::verified_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verified_;
}

void OnlineVerifier::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Drain everything currently dispatchable. Process() runs under the
    // lock: Leopard itself is single-threaded by design, and producers only
    // contend for the short Push critical section.
    while (auto trace = pipeline_.Dispatch()) {
      verifier_.Process(*trace);
      ++verified_;
    }
    if (open_clients_ == 0 && pipeline_.Exhausted()) break;
    producer_cv_.wait(lock);
  }
  verifier_.Finish();
  finished_ = true;
  done_cv_.notify_all();
}

}  // namespace leopard
