#include "harness/executor.h"

#include <cassert>

namespace leopard {

void TxnExecutor::BeginTxn(const TxnSpec& spec) {
  assert(!in_txn_);
  spec_ = spec;
  op_index_ = 0;
  reads_this_txn_.clear();
  txn_ = db_->Begin(client_);
  in_txn_ = true;
}

Value TxnExecutor::EvalRule(const OpSpec& op) {
  switch (op.rule) {
    case ValueRule::kUnique:
      return MakeClientValue(client_, value_counter_++);
    case ValueRule::kConstant:
      return op.constant;
    case ValueRule::kSumOfReads: {
      Value sum = 0;
      for (Value v : reads_this_txn_) sum += v;  // wrapping sum is fine
      return sum;
    }
    case ValueRule::kFirstReadPlusDelta: {
      Value base = reads_this_txn_.empty() ? 0 : reads_this_txn_.front();
      return base + static_cast<Value>(op.delta);
    }
    case ValueRule::kLastReadPlusDelta: {
      Value base = reads_this_txn_.empty() ? 0 : reads_this_txn_.back();
      return base + static_cast<Value>(op.delta);
    }
  }
  return 0;
}

OpOutcome TxnExecutor::FinishAborted() {
  // The engine usually initiated this abort itself; the explicit rollback
  // is idempotent for MiniDB and lets adapters clean their session state.
  db_->Abort(txn_);
  in_txn_ = false;
  OpOutcome out;
  out.trace.op = OpType::kAbort;
  out.trace.txn = txn_;
  out.trace.client = client_;
  out.txn_finished = true;
  out.committed = false;
  return out;
}

OpOutcome TxnExecutor::AbortTxn() {
  assert(in_txn_);
  return FinishAborted();
}

OpOutcome TxnExecutor::ExecuteNextOp() {
  assert(in_txn_);
  OpOutcome out;
  out.trace.txn = txn_;
  out.trace.client = client_;

  if (op_index_ >= spec_.ops.size()) {
    // Implicit terminal commit.
    Status s = db_->Commit(txn_);
    in_txn_ = false;
    out.txn_finished = true;
    out.committed = s.ok();
    out.trace.op = s.ok() ? OpType::kCommit : OpType::kAbort;
    return out;
  }

  const OpSpec& op = spec_.ops[op_index_++];
  auto retry_op = [this, &out] {
    --op_index_;  // re-execute the same op on the next call
    out.retry = true;
    return out;
  };
  switch (op.kind) {
    case OpKind::kRead:
    case OpKind::kReadForUpdate: {
      bool locking = op.kind == OpKind::kReadForUpdate;
      auto v = locking ? db_->ReadForUpdate(txn_, op.key)
                       : db_->Read(txn_, op.key);
      out.trace.for_update = locking;
      if (v.ok()) {
        out.trace.op = OpType::kRead;
        out.trace.read_set.push_back(ReadAccess{op.key, *v});
        reads_this_txn_.push_back(*v);
        return out;
      }
      if (v.status().code() == StatusCode::kNotFound) {
        out.trace.op = OpType::kRead;
        out.trace.absent_reads.push_back(op.key);  // row absent
        return out;
      }
      if (v.status().code() == StatusCode::kBusy) return retry_op();
      return FinishAborted();
    }
    case OpKind::kRangeRead: {
      auto rows = db_->ReadRange(txn_, op.key, op.range_count);
      if (rows.ok()) {
        out.trace.op = OpType::kRead;
        out.trace.read_set = *rows;
        out.trace.range_first = op.key;
        out.trace.range_count = op.range_count;
        for (const auto& r : out.trace.read_set) {
          reads_this_txn_.push_back(r.value);
        }
        return out;
      }
      if (rows.status().code() == StatusCode::kBusy) return retry_op();
      return FinishAborted();
    }
    case OpKind::kWrite: {
      Value value = EvalRule(op);
      Status s = db_->Write(txn_, op.key, value);
      if (s.ok()) {
        out.trace.op = OpType::kWrite;
        out.trace.write_set.push_back(WriteAccess{op.key, value});
        return out;
      }
      if (s.code() == StatusCode::kBusy) return retry_op();
      return FinishAborted();
    }
    case OpKind::kDelete: {
      Status s = db_->Delete(txn_, op.key);
      if (s.ok()) {
        out.trace.op = OpType::kWrite;
        out.trace.write_set.push_back(
            WriteAccess{op.key, kTombstoneValue});
        return out;
      }
      if (s.code() == StatusCode::kBusy) return retry_op();
      return FinishAborted();
    }
    case OpKind::kRangeWrite:
    case OpKind::kRangeDelete: {
      std::vector<WriteAccess> writes;
      writes.reserve(op.range_count);
      for (uint32_t i = 0; i < op.range_count; ++i) {
        Value value = op.kind == OpKind::kRangeDelete ? kTombstoneValue
                                                      : EvalRule(op);
        writes.push_back(WriteAccess{op.key + i, value});
      }
      Status s = db_->WriteBatch(txn_, writes);
      if (s.ok()) {
        out.trace.op = OpType::kWrite;
        out.trace.write_set = std::move(writes);
        return out;
      }
      if (s.code() == StatusCode::kBusy) return retry_op();
      return FinishAborted();
    }
  }
  return FinishAborted();
}

}  // namespace leopard
