#ifndef LEOPARD_HARNESS_RUN_RESULT_H_
#define LEOPARD_HARNESS_RUN_RESULT_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace leopard {

/// Everything a workload run produces: the per-client trace streams (each
/// sorted by ts_bef, as a sequential client naturally emits them) and run
/// statistics. client_traces[0] additionally begins with the bulk-load
/// traces of pseudo-transaction 0 so verifiers learn the initial versions.
struct RunResult {
  std::vector<std::vector<Trace>> client_traces;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t total_ops = 0;
  /// Virtual nanoseconds spanned by the run (SimRunner) or wall nanoseconds
  /// (ThreadRunner).
  Timestamp duration_ns = 0;
  /// Real time the run took to execute, for throughput comparisons.
  double wall_seconds = 0;

  uint64_t TotalTraces() const {
    uint64_t n = 0;
    for (const auto& v : client_traces) n += v.size();
    return n;
  }

  /// All traces merged and sorted by ts_bef (convenience for offline
  /// verifiers and tests).
  std::vector<Trace> MergedTraces() const;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_RUN_RESULT_H_
