#ifndef LEOPARD_HARNESS_EXECUTOR_H_
#define LEOPARD_HARNESS_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "txn/kv_interface.h"
#include "workload/workload.h"

namespace leopard {

/// Result of executing one client operation against the database.
struct OpOutcome {
  /// Trace body for this operation: op kind, txn, client and read/write sets
  /// are filled in; the *interval* is assigned by the runner that owns the
  /// clock (virtual or real).
  Trace trace;
  /// True when this operation terminated the transaction (commit or abort).
  bool txn_finished = false;
  /// Valid when txn_finished: did the transaction commit?
  bool committed = false;
  /// True when the engine asked the client to wait and retry the same
  /// operation (lock wait under the wait-die policy). No trace is emitted;
  /// the runner re-executes later, keeping the original ts_bef so the
  /// operation's final interval covers the whole wait.
  bool retry = false;
};

/// Drives one client's transactions against a Database, one operation at a
/// time. The step-wise interface lets the virtual-time simulator interleave
/// operations from many logical clients deterministically, while the
/// real-thread runner simply calls it in a loop.
///
/// The executor evaluates ValueRules (unique values, constants, values
/// derived from prior reads) and appends the implicit commit operation after
/// the last spec op.
class TxnExecutor {
 public:
  TxnExecutor(ClientId client, TransactionalKv* db)
      : client_(client), db_(db) {}

  /// Starts a new transaction for `spec`. Must not be called while a
  /// transaction is in flight.
  void BeginTxn(const TxnSpec& spec);

  bool InTxn() const { return in_txn_; }

  /// Executes the next operation (or the final commit). The returned trace
  /// body is ready except for its time interval.
  OpOutcome ExecuteNextOp();

  /// Force-aborts the in-flight transaction (runner-side timeout of a lock
  /// wait); returns the abort outcome.
  OpOutcome AbortTxn();

  ClientId client() const { return client_; }

 private:
  Value EvalRule(const OpSpec& op);
  OpOutcome FinishAborted();

  ClientId client_;
  TransactionalKv* db_;
  TxnSpec spec_;
  size_t op_index_ = 0;
  bool in_txn_ = false;
  TxnId txn_ = 0;
  std::vector<Value> reads_this_txn_;
  uint64_t value_counter_ = 0;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_EXECUTOR_H_
