#include "harness/sim_runner.h"

#include <algorithm>
#include <chrono>

namespace leopard {

std::vector<Trace> RunResult::MergedTraces() const {
  std::vector<Trace> all;
  all.reserve(TotalTraces());
  for (const auto& v : client_traces) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Trace& a, const Trace& b) {
                     return a.ts_bef() < b.ts_bef();
                   });
  return all;
}

SimRunner::SimRunner(TransactionalKv* db, Workload* workload,
                     const SimOptions& options)
    : db_(db), workload_(workload), options_(options) {}

uint64_t SimRunner::Draw(Rng& rng, uint64_t lo, uint64_t hi) {
  return lo >= hi ? lo : rng.UniformRange(lo, hi);
}

uint64_t SimRunner::DrawScaled(ClientState& c, uint64_t lo, uint64_t hi) {
  return static_cast<uint64_t>(static_cast<double>(Draw(c.rng, lo, hi)) *
                               c.speed);
}

bool SimRunner::TargetReached(const RunResult& result) const {
  uint64_t finished =
      options_.retry_aborted ? result.committed
                             : result.committed + result.aborted;
  return finished >= options_.total_txns;
}

void SimRunner::ScheduleNext(ClientState& c, RunResult& result) {
  if (!c.exec->InTxn()) {
    if (TargetReached(result)) {
      c.done = true;
      c.scheduled = false;
      return;
    }
    c.last_spec = workload_->NextTransaction(c.rng);
    c.exec->BeginTxn(c.last_spec);
  }
  c.pending_bef = c.now;
  c.pending_service =
      c.now + DrawScaled(c, options_.service_min, options_.service_max);
  c.scheduled = true;
}

RunResult SimRunner::Run() {
  auto wall_start = std::chrono::steady_clock::now();
  RunResult result;
  result.client_traces.resize(options_.clients);

  // Bulk-load initial rows as pseudo-transaction 0, traced at the very
  // beginning of the virtual timeline so verifiers see the initial versions.
  std::vector<WriteAccess> rows = workload_->InitialRows();
  db_->Load(rows);
  constexpr Timestamp kWorkloadStart = 1000;
  if (!rows.empty() && !result.client_traces.empty()) {
    result.client_traces[0].push_back(
        MakeWriteTrace(kLoadTxnId, 0, TimeInterval(1, 2), std::move(rows)));
    result.client_traces[0].push_back(
        MakeCommitTrace(kLoadTxnId, 0, TimeInterval(3, 4)));
  }

  std::vector<ClientState> clients;
  clients.reserve(options_.clients);
  for (uint32_t i = 0; i < options_.clients; ++i) {
    ClientState c(options_.seed * 0x100000001b3ULL + i + 1);
    c.exec = std::make_unique<TxnExecutor>(static_cast<ClientId>(i), db_);
    if (options_.speed_spread > 1.0) {
      c.speed = 1.0 + c.rng.NextDouble() * (options_.speed_spread - 1.0);
    }
    c.now = kWorkloadStart + DrawScaled(c, options_.think_min,
                                        options_.think_max);
    if (options_.max_clock_skew_ns > 0) {
      uint64_t span = static_cast<uint64_t>(options_.max_clock_skew_ns) * 2;
      c.skew = static_cast<int64_t>(c.rng.Uniform(span + 1)) -
               options_.max_clock_skew_ns;
    }
    clients.push_back(std::move(c));
  }
  for (auto& c : clients) ScheduleNext(c, result);

  Timestamp virtual_end = kWorkloadStart;
  while (true) {
    // Pick the client whose service point comes next on the virtual clock.
    ClientState* next = nullptr;
    for (auto& c : clients) {
      if (!c.scheduled) continue;
      if (next == nullptr || c.pending_service < next->pending_service) {
        next = &c;
      }
    }
    if (next == nullptr) break;  // all clients done

    OpOutcome outcome = next->exec->ExecuteNextOp();
    if (outcome.retry) {
      if (++next->retries_this_op <= options_.max_retries) {
        // Lock wait: retry the same operation later. ts_bef is unchanged,
        // so the eventual trace interval covers the whole wait — exactly
        // how a blocked statement looks from the client side.
        next->pending_service +=
            DrawScaled(*next, options_.retry_min, options_.retry_max);
        continue;
      }
      outcome = next->exec->AbortTxn();  // lock-wait timeout
    }
    next->retries_this_op = 0;
    Timestamp ts_aft =
        next->pending_service +
        DrawScaled(*next, options_.tail_min, options_.tail_max);
    // Apply this client's constant clock skew to the recorded interval.
    auto skewed = [next](Timestamp t) {
      if (next->skew >= 0) return t + static_cast<Timestamp>(next->skew);
      Timestamp mag = static_cast<Timestamp>(-next->skew);
      return t > mag ? t - mag : 0;
    };
    outcome.trace.interval = TimeInterval(skewed(next->pending_bef),
                                          skewed(ts_aft));
    ClientId cid = next->exec->client();
    result.client_traces[cid].push_back(std::move(outcome.trace));
    ++result.total_ops;
    if (outcome.txn_finished) {
      if (outcome.committed) {
        ++result.committed;
      } else {
        ++result.aborted;
        if (options_.retry_aborted) {
          // Re-run the same transaction as a fresh attempt.
          next->now = ts_aft + DrawScaled(*next, options_.think_min,
                                          options_.think_max);
          virtual_end = std::max(virtual_end, ts_aft);
          next->exec->BeginTxn(next->last_spec);
          next->pending_bef = next->now;
          next->pending_service =
              next->now + DrawScaled(*next, options_.service_min,
                                     options_.service_max);
          continue;
        }
      }
    }
    next->now = ts_aft + DrawScaled(*next, options_.think_min,
                                    options_.think_max);
    virtual_end = std::max(virtual_end, ts_aft);
    ScheduleNext(*next, result);
  }

  result.duration_ns = virtual_end - kWorkloadStart;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace leopard
