#ifndef LEOPARD_HARNESS_THREAD_RUNNER_H_
#define LEOPARD_HARNESS_THREAD_RUNNER_H_

#include <cstdint>
#include <functional>

#include "harness/run_result.h"
#include "txn/kv_interface.h"
#include "workload/workload.h"

namespace leopard {

/// Real-thread workload driver: each client is an OS thread issuing
/// transactions back-to-back against the (thread-safe) database, tracing
/// every operation with the process-wide monotonic clock. Used for the
/// wall-clock throughput comparison of Fig. 12.
struct ThreadRunnerOptions {
  uint32_t threads = 4;
  uint64_t total_txns = 1000;  ///< across all threads (finished txns)
  uint64_t seed = 42;
  bool retry_aborted = false;
  /// Modeled per-operation engine latency. MiniDB executes an operation in
  /// ~100ns; a real DBMS statement costs tens of microseconds to
  /// milliseconds (SQL, buffer pool, WAL, network). Setting this makes the
  /// DBMS-vs-verifier throughput comparison of Fig. 12 meaningful.
  uint64_t op_delay_ns = 0;
  /// Optional live trace sink, invoked by each client thread right after
  /// it records a trace — e.g. OnlineVerifier::Push for verification that
  /// runs concurrently with the workload. Must be thread-safe.
  std::function<void(ClientId, const Trace&)> on_trace;
};

class ThreadRunner {
 public:
  ThreadRunner(TransactionalKv* db, Workload* workload,
               const ThreadRunnerOptions& options)
      : db_(db), workload_(workload), options_(options) {}

  RunResult Run();

 private:
  TransactionalKv* db_;
  Workload* workload_;
  ThreadRunnerOptions options_;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_THREAD_RUNNER_H_
