#ifndef LEOPARD_HARNESS_ONLINE_VERIFIER_H_
#define LEOPARD_HARNESS_ONLINE_VERIFIER_H_

#include <condition_variable>
#include <mutex>
#include <thread>

#include "pipeline/two_level_pipeline.h"
#include "verifier/leopard.h"

namespace leopard {

/// The paper's deployment mode: verification runs *while* the workload
/// executes. Client threads push traces as they produce them; a dedicated
/// verifier thread drains the two-level pipeline and feeds Leopard, so
/// violations surface moments after the offending operations commit.
///
/// Thread-safety: Push/Close may be called concurrently from any number of
/// producer threads; the verifier thread owns Dispatch and the Leopard
/// instance. Wait() blocks until every pushed trace has been verified.
class OnlineVerifier {
 public:
  OnlineVerifier(uint32_t n_clients, const VerifierConfig& config);
  ~OnlineVerifier();
  OnlineVerifier(const OnlineVerifier&) = delete;
  OnlineVerifier& operator=(const OnlineVerifier&) = delete;

  /// Appends a trace from `client` (ts_bef non-decreasing per client).
  void Push(ClientId client, Trace trace);

  /// Marks `client`'s stream as finished.
  void Close(ClientId client);

  /// Blocks until all pushed traces are verified (all clients must have
  /// been closed), then returns the final verifier.
  const Leopard& Wait();

  /// Traces verified so far (approximate while running).
  uint64_t verified_count() const;

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable producer_cv_;  // signals: new input available
  std::condition_variable done_cv_;      // signals: verification finished
  TwoLevelPipeline pipeline_;
  Leopard verifier_;
  uint64_t verified_ = 0;
  uint32_t n_clients_;
  uint32_t open_clients_;
  bool finished_ = false;
  std::thread worker_;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_ONLINE_VERIFIER_H_
