#ifndef LEOPARD_HARNESS_ONLINE_VERIFIER_H_
#define LEOPARD_HARNESS_ONLINE_VERIFIER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "pipeline/two_level_pipeline.h"
#include "verifier/leopard.h"
#include "verifier/sharded_leopard.h"

namespace leopard {

/// The paper's deployment mode: verification runs *while* the workload
/// executes. Client threads push traces as they produce them; a dedicated
/// dispatcher thread drains the two-level pipeline and feeds the
/// verification engine, so violations surface moments after the offending
/// operations commit.
///
/// The engine is a ShardedLeopard: with n_shards == 1 (the default) it is
/// exactly the single-threaded Leopard; with more shards the dispatcher
/// thread only routes traces while N shard workers and a certifier thread
/// do the verification in parallel.
///
/// Thread-safety: Push/Close may be called concurrently from any number of
/// producer threads; Close is idempotent per client. The dispatcher thread
/// owns Dispatch and the engine. Producers never wait on verification: the
/// dispatcher drains dispatchable traces into a local batch and verifies
/// them *outside* the producer mutex.
///
/// With ObsOptions the verifier instruments itself into a MetricsRegistry
/// (per-mechanism latency histograms, pipeline queue depth, per-shard
/// metrics when sharded) and can run a background progress reporter
/// emitting throughput, queue depth, the uncertain-dependency ratio β and
/// violation counts at a configurable interval — all from atomics, never
/// contending with the verifier thread.
class OnlineVerifier {
 public:
  struct ObsOptions {
    /// Not owned; must outlive the OnlineVerifier. nullptr disables all
    /// instrumentation.
    obs::MetricsRegistry* metrics = nullptr;
    /// 0 disables the background progress reporter.
    uint64_t progress_interval_ms = 0;
    /// Print a human-readable progress line on each reporter tick.
    bool print_progress = true;
    /// One trace in N pays for latency-span clock reads (1 = time all).
    uint32_t span_sample_every = 16;
    /// Optional state-transition journal, forwarded to the engine.
    obs::EventJournal* events = nullptr;
    /// Optional heartbeat watchdog: the dispatcher registers as
    /// "dispatcher"; shard workers and the certifier register via the
    /// engine (see ShardedLeopard::Options).
    obs::Watchdog* watchdog = nullptr;
  };

  struct Options {
    /// Verification shards (see ShardedLeopard). 1 = single-threaded engine.
    uint32_t n_shards = 1;
    /// Worker threads draining the shard queues (0 = one per shard); see
    /// ShardedLeopard::Options::n_workers.
    uint32_t n_workers = 0;
    /// Skew-adaptive hot-key rebalancing between shards; see
    /// ShardedLeopard::Options::enable_rebalance.
    bool enable_rebalance = false;
    ObsOptions obs;
    /// Allow AddClient() after construction (online ingestion: sessions
    /// join while verification runs). The run then finishes only after
    /// SealClients() — otherwise a moment with zero open clients (one
    /// session gone, the next not yet connected) would end it prematurely.
    bool dynamic_clients = false;
    /// Invoked from the dispatcher thread as violations surface: after each
    /// verified batch with a single-shard engine (so reports trail the
    /// offending trace by at most one batch), and during the final drain
    /// for bugs that only aggregate at Finish (sharded workers, certifier).
    /// Every bug is delivered exactly once, always before WaitReport()
    /// returns. Must not call back into this OnlineVerifier.
    std::function<void(const BugDescriptor&)> on_bug;
  };

  OnlineVerifier(uint32_t n_clients, const VerifierConfig& config);
  OnlineVerifier(uint32_t n_clients, const VerifierConfig& config,
                 const ObsOptions& obs_options);
  OnlineVerifier(uint32_t n_clients, const VerifierConfig& config,
                 const Options& options);
  ~OnlineVerifier();
  OnlineVerifier(const OnlineVerifier&) = delete;
  OnlineVerifier& operator=(const OnlineVerifier&) = delete;

  /// Appends a trace from `client` (ts_bef non-decreasing per client).
  void Push(ClientId client, Trace trace);

  /// Marks `client`'s stream as finished. Idempotent: duplicate closes of
  /// the same client are ignored, so a retried shutdown path cannot end the
  /// run while another client is still open.
  void Close(ClientId client);

  /// A client stream registered mid-run (Options::dynamic_clients only).
  /// `floor` is the dispatch floor it was admitted at: its traces must
  /// carry ts_bef >= floor, a bound the caller must enforce on untrusted
  /// streams before Push (the pipeline asserts it in debug builds).
  struct AddedClient {
    ClientId id = 0;
    Timestamp floor = 0;
  };

  /// Registers a new client stream while verification runs. Thread-safe.
  /// Fails with FailedPrecondition when the verifier is not dynamic or has
  /// already been sealed — a late registration after SealClients() must be
  /// rejected (the run may already be draining), never applied: in release
  /// builds it would silently mutate pipeline state mid-finish. Callers
  /// (VerifierServer) surface the failure to the session as a kError frame.
  StatusOr<AddedClient> AddClient();

  /// Re-opens a previously Close()d client stream — the reconnect case: a
  /// session that disconnected mid-run resumes the same client id instead
  /// of registering a fresh one. The returned floor is the oldest ts_bef
  /// the resumed stream may still push: max(its last pushed ts_bef, the
  /// dispatch floor). Fails with FailedPrecondition when the verifier is
  /// not dynamic, already sealed, or the client is still open, and with
  /// InvalidArgument for an unknown client id. Thread-safe.
  StatusOr<AddedClient> ReopenClient(ClientId client);

  /// Declares that no further AddClient() calls will come, letting the run
  /// finish once every registered client is closed and drained. Idempotent;
  /// implicit for non-dynamic verifiers.
  void SealClients();

  /// Blocks until all pushed traces are verified (all clients must have
  /// been closed), then returns the final verifier. Single-shard only —
  /// sharded runs have no one Leopard to return; use WaitReport().
  const Leopard& Wait();

  /// Blocks until all pushed traces are verified, then returns the
  /// aggregated report (works for any shard count).
  const VerifyReport& WaitReport();

  /// Traces handed to the engine so far (approximate while running; in
  /// sharded mode a routed trace may still be in flight to its shard).
  /// Lock-free: safe to poll at any rate without contending with the
  /// verifier thread.
  uint64_t verified_count() const {
    return verified_.load(std::memory_order_relaxed);
  }
  bool verified_count_is_lock_free() const { return verified_.is_lock_free(); }

  /// Approximate bytes of trace payload handed to the engine so far (the
  /// ApproxBytes() sum of verified traces). Producers pushing decoded
  /// network frames use pushed-bytes minus this as the in-flight bound for
  /// backpressure. Lock-free.
  uint64_t verified_bytes() const {
    return verified_bytes_.load(std::memory_order_relaxed);
  }

  /// Approximate bytes of traces pushed but not yet verified (buffered in
  /// the pipeline). The durable server re-seeds its backpressure accounting
  /// from verified_bytes() + this after a resume.
  uint64_t ApproxBufferedBytes() const;

  /// Registered client streams so far, closed ones included. Thread-safe.
  /// WAL replay uses this as the idempotence base: a logged registration
  /// below it is already part of the restored checkpoint.
  uint32_t client_count() const;

  /// Checkpoint hooks (src/durable). SaveState parks the dispatcher at a
  /// quiescent point — every dispatched trace fully verified, nothing in
  /// flight between pipeline and engine — quiesces the sharded engine, and
  /// serializes client state, the pipeline's buffered traces and the full
  /// engine state. Producers calling Push() concurrently simply block on
  /// the internal mutex for the duration. Fails with FailedPrecondition
  /// when the run is already draining or finished (there is nothing left
  /// worth checkpointing — the final report is authoritative).
  ///
  /// LoadState uses the same handshake and replaces the verifier's state
  /// wholesale; call it before any traffic, on a verifier constructed with
  /// the same VerifierConfig and shard count as the saver.
  Status SaveState(StateWriter& w);
  Status LoadState(StateReader& r);

 private:
  void Loop();
  void WaitFinished();
  void DeliverNewBugs(const std::vector<BugDescriptor>& bugs);
  obs::ProgressSnapshot SampleProgress() const;

  mutable std::mutex mu_;
  std::condition_variable producer_cv_;  // signals: new input available
  std::condition_variable done_cv_;      // signals: verification finished
  TwoLevelPipeline pipeline_;
  ShardedLeopard engine_;
  std::atomic<uint64_t> verified_{0};
  std::atomic<uint64_t> verified_bytes_{0};
  uint32_t n_clients_;
  uint32_t open_clients_;
  std::vector<uint8_t> client_closed_;  // guarded by mu_
  bool sealed_ = true;                  // guarded by mu_
  bool finished_ = false;
  /// Checkpoint safepoint handshake (all guarded by mu_): SaveState sets
  /// ckpt_requested_ and waits on ckpt_cv_; the dispatcher parks at its
  /// loop top (ckpt_parked_) until the request clears. draining_ marks the
  /// window where the dispatcher has committed to the final drain (between
  /// its loop exit and finished_) — a checkpoint can no longer be taken.
  bool ckpt_requested_ = false;
  bool ckpt_parked_ = false;
  bool draining_ = false;
  std::condition_variable ckpt_cv_;
  std::function<void(const BugDescriptor&)> on_bug_;  // dispatcher thread only
  size_t bugs_delivered_ = 0;                         // dispatcher thread only
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned
  obs::Watchdog* watchdog_ = nullptr;        // not owned
  std::thread worker_;
  std::unique_ptr<obs::ProgressReporter> reporter_;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_ONLINE_VERIFIER_H_
