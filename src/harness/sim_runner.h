#ifndef LEOPARD_HARNESS_SIM_RUNNER_H_
#define LEOPARD_HARNESS_SIM_RUNNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/executor.h"
#include "harness/run_result.h"
#include "txn/kv_interface.h"
#include "workload/workload.h"

namespace leopard {

/// Deterministic virtual-time workload driver.
///
/// Each logical client is a sequential state machine; the scheduler executes
/// the operation whose *service point* (the instant the DBMS processes it)
/// comes next on the virtual clock. Every operation gets a trace interval
/// [ts_bef, ts_aft] containing its service point, with configurable service
/// and tail latencies — so interval overlap between clients (the paper's β)
/// is a controllable function of latency vs. think time, reproducible on a
/// single core.
///
/// Optional per-client clock skew shifts recorded timestamps, modelling
/// imperfect NTP synchronization across client machines.
struct SimOptions {
  uint32_t clients = 8;
  /// Stop once this many transactions finished (committed when
  /// retry_aborted, otherwise committed+aborted).
  uint64_t total_txns = 1000;
  uint64_t seed = 42;
  bool retry_aborted = false;

  // Virtual latency model (nanoseconds).
  uint64_t service_min = 40000;  ///< ts_bef -> service point
  uint64_t service_max = 120000;
  uint64_t tail_min = 10000;     ///< service point -> ts_aft
  uint64_t tail_max = 60000;
  uint64_t think_min = 0;        ///< ts_aft -> next ts_bef
  uint64_t think_max = 30000;
  /// Backoff before re-attempting an operation the engine asked to retry
  /// (wait-die lock wait). The op keeps its original ts_bef, so its final
  /// trace interval spans the whole wait.
  uint64_t retry_min = 40000;
  uint64_t retry_max = 120000;
  /// Retries per op before the runner gives up and aborts the transaction.
  uint32_t max_retries = 10000;

  /// Per-client clock skew drawn uniformly from [-max_clock_skew_ns, +max].
  int64_t max_clock_skew_ns = 0;

  /// Per-client speed heterogeneity: client i's latencies are multiplied by
  /// a factor drawn uniformly from [1, speed_spread]. Values > 1 reproduce
  /// the uneven timestamp distributions that stress the two-level
  /// pipeline's watermark (Fig. 10).
  double speed_spread = 1.0;
};

class SimRunner {
 public:
  SimRunner(TransactionalKv* db, Workload* workload,
            const SimOptions& options);

  /// Loads the workload's initial rows and runs to completion.
  RunResult Run();

 private:
  struct ClientState {
    std::unique_ptr<TxnExecutor> exec;
    Rng rng;
    TxnSpec last_spec;
    Timestamp now = 0;
    Timestamp pending_bef = 0;
    Timestamp pending_service = 0;
    int64_t skew = 0;
    double speed = 1.0;
    uint32_t retries_this_op = 0;
    bool scheduled = false;
    bool done = false;

    explicit ClientState(uint64_t seed) : rng(seed) {}
  };

  void ScheduleNext(ClientState& c, RunResult& result);
  bool TargetReached(const RunResult& result) const;
  uint64_t Draw(Rng& rng, uint64_t lo, uint64_t hi);
  uint64_t DrawScaled(ClientState& c, uint64_t lo, uint64_t hi);

  TransactionalKv* db_;
  Workload* workload_;
  SimOptions options_;
};

}  // namespace leopard

#endif  // LEOPARD_HARNESS_SIM_RUNNER_H_
