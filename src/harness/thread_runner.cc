#include "harness/thread_runner.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "harness/executor.h"

namespace leopard {

RunResult ThreadRunner::Run() {
  auto wall_start = std::chrono::steady_clock::now();
  RunResult result;
  result.client_traces.resize(options_.threads);

  std::vector<WriteAccess> rows = workload_->InitialRows();
  db_->Load(rows);

  MonotonicClock clock;
  Timestamp run_start = clock.Now();
  if (!rows.empty()) {
    result.client_traces[0].push_back(MakeWriteTrace(
        kLoadTxnId, 0, TimeInterval(run_start - 4, run_start - 3),
        std::move(rows)));
    result.client_traces[0].push_back(MakeCommitTrace(
        kLoadTxnId, 0, TimeInterval(run_start - 2, run_start - 1)));
    if (options_.on_trace) {
      options_.on_trace(0, result.client_traces[0][0]);
      options_.on_trace(0, result.client_traces[0][1]);
    }
  }

  std::atomic<uint64_t> finished{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> total_ops{0};

  auto worker = [&](uint32_t tid) {
    Rng rng(options_.seed * 0x100000001b3ULL + tid + 1);
    TxnExecutor exec(static_cast<ClientId>(tid), db_);
    auto& traces = result.client_traces[tid];
    while (finished.load(std::memory_order_relaxed) < options_.total_txns) {
      TxnSpec spec = workload_->NextTransaction(rng);
      bool done = false;
      while (!done) {
        exec.BeginTxn(spec);
        while (exec.InTxn()) {
          Timestamp bef = clock.Now();
          OpOutcome outcome = exec.ExecuteNextOp();
          while (outcome.retry) {  // lock wait: spin until granted
            std::this_thread::yield();
            outcome = exec.ExecuteNextOp();
          }
          if (options_.op_delay_ns > 0) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(options_.op_delay_ns));
          }
          Timestamp aft = clock.Now();
          outcome.trace.interval = TimeInterval(bef, aft);
          bool txn_finished = outcome.txn_finished;
          bool txn_committed = outcome.committed;
          traces.push_back(std::move(outcome.trace));
          if (options_.on_trace) {
            options_.on_trace(static_cast<ClientId>(tid), traces.back());
          }
          total_ops.fetch_add(1, std::memory_order_relaxed);
          if (txn_finished) {
            if (txn_committed) {
              committed.fetch_add(1, std::memory_order_relaxed);
              finished.fetch_add(1, std::memory_order_relaxed);
              done = true;
            } else {
              aborted.fetch_add(1, std::memory_order_relaxed);
              if (options_.retry_aborted) {
                break;  // retry same spec with a fresh transaction
              }
              finished.fetch_add(1, std::memory_order_relaxed);
              done = true;
            }
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.threads);
  for (uint32_t t = 0; t < options_.threads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (auto& t : threads) t.join();

  result.committed = committed.load();
  result.aborted = aborted.load();
  result.total_ops = total_ops.load();
  result.duration_ns = clock.Now() - run_start;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace leopard
