#ifndef LEOPARD_ADAPTERS_SQLITE_DB_H_
#define LEOPARD_ADAPTERS_SQLITE_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "txn/kv_interface.h"

struct sqlite3;
struct sqlite3_stmt;

namespace leopard {

namespace obs {
class MetricsRegistry;
class Counter;
}  // namespace obs

/// TransactionalKv adapter over a *real* SQLite database — the black-box
/// promise made concrete: the identical harness, tracer and verifier that
/// run against MiniDB run unchanged against an actual engine.
///
/// SQLite appears in the paper's Fig. 1 as pure 2PL at SERIALIZABLE
/// (ME-only): one writer at a time, database-level locks, readers block
/// writers. The adapter opens one connection per client over a shared
/// on-disk database file; key-value pairs live in
///   CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER);
/// Values round-trip through SQLite's signed 64-bit INTEGER.
///
/// Error mapping: SQLITE_BUSY or SQLITE_LOCKED on a statement -> kBusy (the
/// harness retries, stretching the trace interval like a blocked statement);
/// SQLITE_BUSY on COMMIT rolls back -> kAborted; no row -> kNotFound.
class SqliteDb : public TransactionalKv {
 public:
  struct Options {
    /// Path of the database file. Empty: a fresh temp file, removed on
    /// destruction.
    std::string path;
    uint32_t connections = 8;  ///< one per client (client id % connections)
    /// Journal mode applied to every connection: "rollback" (SQLite's
    /// default DELETE journal — writers exclude readers) or "wal"
    /// (write-ahead log — readers proceed against the last committed
    /// snapshot while one writer appends). WAL changes the concurrency
    /// shape the verifier observes, so campaigns can exercise both.
    std::string journal_mode = "rollback";
    /// Per-connection sqlite3_busy_timeout in milliseconds. 0 keeps the
    /// historical behaviour: statements return BUSY immediately and the
    /// harness retries, stretching the trace interval. A positive value
    /// makes SQLite itself spin-wait before surfacing BUSY, trading
    /// adapter retries for longer in-engine blocking.
    int busy_timeout_ms = 0;
    /// Optional metrics sink; when set the adapter exports
    /// `adapter.sqlite.*` counters (see docs/OBSERVABILITY.md).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit SqliteDb(const Options& options);
  ~SqliteDb() override;
  SqliteDb(const SqliteDb&) = delete;
  SqliteDb& operator=(const SqliteDb&) = delete;

  /// True when the adapter initialized successfully; all operations fail
  /// cleanly otherwise.
  bool ok() const { return init_ok_; }

  void Load(const std::vector<WriteAccess>& rows) override;
  TxnId Begin(ClientId client) override;
  StatusOr<Value> Read(TxnId txn, Key key) override;
  StatusOr<Value> ReadForUpdate(TxnId txn, Key key) override;
  StatusOr<std::vector<ReadAccess>> ReadRange(TxnId txn, Key first,
                                              uint32_t count) override;
  Status Write(TxnId txn, Key key, Value value) override;
  Status Delete(TxnId txn, Key key) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

 private:
  struct Connection;

  Connection* ConnFor(TxnId txn);
  Status Exec(Connection& conn, const char* sql);
  /// Runs a single-step statement; kBusy/kAborted mapping as above.
  Status Step(Connection& conn, sqlite3_stmt* stmt);

  Options options_;
  bool init_ok_ = false;
  std::string path_;
  bool unlink_on_close_ = false;
  // Cached metric pointers (null when Options::metrics is null).
  obs::Counter* m_busy_retries_ = nullptr;  ///< adapter.sqlite.busy_retries
  obs::Counter* m_aborts_ = nullptr;        ///< adapter.sqlite.aborts
  obs::Counter* m_commits_ = nullptr;       ///< adapter.sqlite.commits
  obs::Counter* m_begins_ = nullptr;        ///< adapter.sqlite.begins
  std::vector<std::unique_ptr<Connection>> connections_;
  std::mutex mu_;  // protects txn_conn_ and next_txn_
  std::unordered_map<TxnId, uint32_t> txn_conn_;
  TxnId next_txn_ = 1;
};

}  // namespace leopard

#endif  // LEOPARD_ADAPTERS_SQLITE_DB_H_
