#include "adapters/sqlite_db.h"

#include <sqlite3.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "obs/registry.h"

namespace leopard {

namespace {
// Consecutive SQLITE_BUSY results a transaction tolerates before the
// adapter rolls it back — the standard application-side resolution of
// SQLite's shared->reserved upgrade deadlock.
constexpr uint32_t kBusyLimit = 50;

// SQLITE_LOCKED (a table-level conflict within a shared-cache group or an
// in-progress statement on the same connection) is retried exactly like
// SQLITE_BUSY: from the harness's point of view both mean "the engine could
// not grant the access right now".
bool IsBusyRc(int rc) { return rc == SQLITE_BUSY || rc == SQLITE_LOCKED; }

std::string TempPath() {
  static std::atomic<uint64_t> counter{0};
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/leopard_sqlite_%d_%llu.db",
                static_cast<int>(getpid()),
                static_cast<unsigned long long>(counter++));
  return buf;
}
}  // namespace

struct SqliteDb::Connection {
  sqlite3* db = nullptr;
  sqlite3_stmt* read = nullptr;
  sqlite3_stmt* lock_row = nullptr;  // UPDATE kv SET v=v WHERE k=?
  sqlite3_stmt* write = nullptr;
  sqlite3_stmt* del = nullptr;
  sqlite3_stmt* range = nullptr;
  bool in_txn = false;
  uint32_t busy_streak = 0;

  ~Connection() {
    for (sqlite3_stmt* stmt : {read, lock_row, write, del, range}) {
      if (stmt != nullptr) sqlite3_finalize(stmt);
    }
    if (db != nullptr) sqlite3_close(db);
  }
};

SqliteDb::SqliteDb(const Options& options) : options_(options) {
  path_ = options.path.empty() ? TempPath() : options.path;
  unlink_on_close_ = options.path.empty();
  if (options_.metrics != nullptr) {
    m_busy_retries_ = options_.metrics->counter("adapter.sqlite.busy_retries");
    m_aborts_ = options_.metrics->counter("adapter.sqlite.aborts");
    m_commits_ = options_.metrics->counter("adapter.sqlite.commits");
    m_begins_ = options_.metrics->counter("adapter.sqlite.begins");
  }
  const char* journal_pragma = nullptr;
  if (options_.journal_mode == "wal") {
    journal_pragma = "PRAGMA journal_mode=WAL;";
  } else if (options_.journal_mode == "rollback" ||
             options_.journal_mode == "delete") {
    journal_pragma = "PRAGMA journal_mode=DELETE;";
  } else {
    return;  // unknown journal mode: fail init cleanly
  }
  for (uint32_t i = 0; i < options_.connections; ++i) {
    auto conn = std::make_unique<Connection>();
    if (sqlite3_open(path_.c_str(), &conn->db) != SQLITE_OK) return;
    // busy_timeout 0 keeps the historical immediate-BUSY behaviour so the
    // harness does the retrying; positive values let SQLite block in-engine.
    sqlite3_busy_timeout(conn->db, options_.busy_timeout_ms);
    if (i == 0) {
      char* jerr = nullptr;
      // journal_mode returns a row; sqlite3_exec discards it.
      int jrc = sqlite3_exec(conn->db, journal_pragma, nullptr, nullptr, &jerr);
      if (jerr != nullptr) sqlite3_free(jerr);
      if (jrc != SQLITE_OK) return;
    }
    if (i == 0) {
      char* err = nullptr;
      int rc = sqlite3_exec(
          conn->db,
          "CREATE TABLE IF NOT EXISTS kv (k INTEGER PRIMARY KEY, "
          "v INTEGER NOT NULL);",
          nullptr, nullptr, &err);
      if (err != nullptr) sqlite3_free(err);
      if (rc != SQLITE_OK) return;
    }
    auto prepare = [&conn](const char* sql, sqlite3_stmt** stmt) {
      return sqlite3_prepare_v2(conn->db, sql, -1, stmt, nullptr) ==
             SQLITE_OK;
    };
    if (!prepare("SELECT v FROM kv WHERE k = ?1;", &conn->read) ||
        !prepare("UPDATE kv SET v = v WHERE k = ?1;", &conn->lock_row) ||
        !prepare("INSERT OR REPLACE INTO kv (k, v) VALUES (?1, ?2);",
                 &conn->write) ||
        !prepare("DELETE FROM kv WHERE k = ?1;", &conn->del) ||
        !prepare("SELECT k, v FROM kv WHERE k >= ?1 AND k < ?2 ORDER BY k;",
                 &conn->range)) {
      return;
    }
    connections_.push_back(std::move(conn));
  }
  init_ok_ = connections_.size() == options_.connections;
}

SqliteDb::~SqliteDb() {
  connections_.clear();
  if (unlink_on_close_) {
    std::remove(path_.c_str());
    std::remove((path_ + "-journal").c_str());
    std::remove((path_ + "-wal").c_str());
    std::remove((path_ + "-shm").c_str());
  }
}

SqliteDb::Connection* SqliteDb::ConnFor(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txn_conn_.find(txn);
  if (it == txn_conn_.end()) return nullptr;
  return connections_[it->second].get();
}

Status SqliteDb::Exec(Connection& conn, const char* sql) {
  char* err = nullptr;
  int rc = sqlite3_exec(conn.db, sql, nullptr, nullptr, &err);
  std::string message = err != nullptr ? err : "";
  if (err != nullptr) sqlite3_free(err);
  if (rc == SQLITE_OK) return Status::Ok();
  if (IsBusyRc(rc)) {
    if (m_busy_retries_ != nullptr) m_busy_retries_->Inc();
    return Status::Busy("sqlite busy");
  }
  return Status::Internal("sqlite: " + message);
}

Status SqliteDb::Step(Connection& conn, sqlite3_stmt* stmt) {
  int rc = sqlite3_step(stmt);
  sqlite3_reset(stmt);
  if (rc == SQLITE_DONE || rc == SQLITE_ROW) {
    conn.busy_streak = 0;
    return rc == SQLITE_ROW ? Status::Ok()
                            : Status::NotFound("no row");
  }
  if (IsBusyRc(rc)) {
    // Shared->reserved upgrade deadlocks never resolve by waiting; after a
    // bounded streak, roll the transaction back like real applications do.
    if (++conn.busy_streak >= kBusyLimit) {
      Exec(conn, "ROLLBACK;");
      conn.in_txn = false;
      conn.busy_streak = 0;
      if (m_aborts_ != nullptr) m_aborts_->Inc();
      return Status::Aborted("sqlite busy (deadlock resolution)");
    }
    if (m_busy_retries_ != nullptr) m_busy_retries_->Inc();
    return Status::Busy("sqlite busy");
  }
  return Status::Internal(sqlite3_errmsg(conn.db));
}

void SqliteDb::Load(const std::vector<WriteAccess>& rows) {
  if (!init_ok_) return;
  Connection& conn = *connections_[0];
  Exec(conn, "BEGIN;");
  for (const auto& row : rows) {
    sqlite3_bind_int64(conn.write, 1,
                       static_cast<sqlite3_int64>(row.key));
    sqlite3_bind_int64(conn.write, 2,
                       static_cast<sqlite3_int64>(row.value));
    sqlite3_step(conn.write);
    sqlite3_reset(conn.write);
  }
  Exec(conn, "COMMIT;");
}

TxnId SqliteDb::Begin(ClientId client) {
  if (!init_ok_) return 0;
  uint32_t conn_idx = client % options_.connections;
  Connection& conn = *connections_[conn_idx];
  if (!conn.in_txn) {
    if (!Exec(conn, "BEGIN;").ok()) return 0;
    conn.in_txn = true;
    conn.busy_streak = 0;
  }
  if (m_begins_ != nullptr) m_begins_->Inc();
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_txn_++;
  txn_conn_[id] = conn_idx;
  return id;
}

StatusOr<Value> SqliteDb::Read(TxnId txn, Key key) {
  Connection* conn = ConnFor(txn);
  if (conn == nullptr || !conn->in_txn) {
    return Status::FailedPrecondition("txn not active");
  }
  sqlite3_bind_int64(conn->read, 1, static_cast<sqlite3_int64>(key));
  int rc = sqlite3_step(conn->read);
  if (rc == SQLITE_ROW) {
    Value value =
        static_cast<Value>(sqlite3_column_int64(conn->read, 0));
    sqlite3_reset(conn->read);
    conn->busy_streak = 0;
    return value;
  }
  sqlite3_reset(conn->read);
  if (rc == SQLITE_DONE) {
    conn->busy_streak = 0;
    return Status::NotFound("no row");
  }
  if (IsBusyRc(rc)) {
    if (++conn->busy_streak >= kBusyLimit) {
      Exec(*conn, "ROLLBACK;");
      conn->in_txn = false;
      conn->busy_streak = 0;
      if (m_aborts_ != nullptr) m_aborts_->Inc();
      return Status::Aborted("sqlite busy (deadlock resolution)");
    }
    if (m_busy_retries_ != nullptr) m_busy_retries_->Inc();
    return Status::Busy("sqlite busy");
  }
  return Status::Internal(sqlite3_errmsg(conn->db));
}

StatusOr<Value> SqliteDb::ReadForUpdate(TxnId txn, Key key) {
  Connection* conn = ConnFor(txn);
  if (conn == nullptr || !conn->in_txn) {
    return Status::FailedPrecondition("txn not active");
  }
  // SQLite has no FOR UPDATE; a self-assignment UPDATE takes the reserved
  // (writer) lock, giving the exclusive semantics the statement promises.
  sqlite3_bind_int64(conn->lock_row, 1, static_cast<sqlite3_int64>(key));
  Status locked = Step(*conn, conn->lock_row);
  if (!locked.ok() && locked.code() != StatusCode::kNotFound) {
    return locked;  // kBusy or kAborted
  }
  return Read(txn, key);
}

StatusOr<std::vector<ReadAccess>> SqliteDb::ReadRange(TxnId txn, Key first,
                                                      uint32_t count) {
  Connection* conn = ConnFor(txn);
  if (conn == nullptr || !conn->in_txn) {
    return Status::FailedPrecondition("txn not active");
  }
  sqlite3_bind_int64(conn->range, 1, static_cast<sqlite3_int64>(first));
  sqlite3_bind_int64(conn->range, 2,
                     static_cast<sqlite3_int64>(first + count));
  std::vector<ReadAccess> out;
  int rc;
  while ((rc = sqlite3_step(conn->range)) == SQLITE_ROW) {
    ReadAccess r;
    r.key = static_cast<Key>(sqlite3_column_int64(conn->range, 0));
    r.value = static_cast<Value>(sqlite3_column_int64(conn->range, 1));
    out.push_back(r);
  }
  sqlite3_reset(conn->range);
  if (rc == SQLITE_DONE) {
    conn->busy_streak = 0;
    return out;
  }
  if (IsBusyRc(rc)) {
    if (++conn->busy_streak >= kBusyLimit) {
      Exec(*conn, "ROLLBACK;");
      conn->in_txn = false;
      conn->busy_streak = 0;
      if (m_aborts_ != nullptr) m_aborts_->Inc();
      return Status::Aborted("sqlite busy (deadlock resolution)");
    }
    if (m_busy_retries_ != nullptr) m_busy_retries_->Inc();
    return Status::Busy("sqlite busy");
  }
  return Status::Internal(sqlite3_errmsg(conn->db));
}

Status SqliteDb::Write(TxnId txn, Key key, Value value) {
  Connection* conn = ConnFor(txn);
  if (conn == nullptr || !conn->in_txn) {
    return Status::FailedPrecondition("txn not active");
  }
  sqlite3_bind_int64(conn->write, 1, static_cast<sqlite3_int64>(key));
  sqlite3_bind_int64(conn->write, 2, static_cast<sqlite3_int64>(value));
  Status s = Step(*conn, conn->write);
  return s.code() == StatusCode::kNotFound ? Status::Ok() : s;
}

Status SqliteDb::Delete(TxnId txn, Key key) {
  Connection* conn = ConnFor(txn);
  if (conn == nullptr || !conn->in_txn) {
    return Status::FailedPrecondition("txn not active");
  }
  sqlite3_bind_int64(conn->del, 1, static_cast<sqlite3_int64>(key));
  Status s = Step(*conn, conn->del);
  return s.code() == StatusCode::kNotFound ? Status::Ok() : s;
}

Status SqliteDb::Commit(TxnId txn) {
  Connection* conn = ConnFor(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_conn_.erase(txn);
  }
  if (conn == nullptr) return Status::FailedPrecondition("unknown txn");
  if (!conn->in_txn) return Status::Aborted("txn already rolled back");
  Status s = Exec(*conn, "COMMIT;");
  if (s.ok()) {
    conn->in_txn = false;
    if (m_commits_ != nullptr) m_commits_->Inc();
    return s;
  }
  // COMMIT failed (e.g. BUSY): roll back so the connection is reusable.
  Exec(*conn, "ROLLBACK;");
  conn->in_txn = false;
  if (m_aborts_ != nullptr) m_aborts_->Inc();
  return Status::Aborted("sqlite commit failed: " + s.message());
}

Status SqliteDb::Abort(TxnId txn) {
  Connection* conn = ConnFor(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_conn_.erase(txn);
  }
  if (conn == nullptr) return Status::Ok();  // idempotent
  if (conn->in_txn) {
    Exec(*conn, "ROLLBACK;");
    conn->in_txn = false;
    if (m_aborts_ != nullptr) m_aborts_->Inc();
  }
  return Status::Ok();
}

}  // namespace leopard
