#include "trace/trace.h"

#include <sstream>

namespace leopard {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "READ";
    case OpType::kWrite:
      return "WRITE";
    case OpType::kCommit:
      return "COMMIT";
    case OpType::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

const char* IsolationLevelName(IsolationLevel il) {
  switch (il) {
    case IsolationLevel::kReadCommitted:
      return "READ_COMMITTED";
    case IsolationLevel::kRepeatableRead:
      return "REPEATABLE_READ";
    case IsolationLevel::kSnapshotIsolation:
      return "SNAPSHOT_ISOLATION";
    case IsolationLevel::kSerializable:
      return "SERIALIZABLE";
  }
  return "UNKNOWN";
}

std::string Trace::ToString() const {
  std::ostringstream os;
  os << "{" << interval << " " << OpTypeName(op) << " txn=" << txn
     << " client=" << client;
  if (op == OpType::kRead) {
    os << " rs=[";
    for (size_t i = 0; i < read_set.size(); ++i) {
      if (i) os << ",";
      os << read_set[i].key << ":" << read_set[i].value;
    }
    os << "]";
    if (!absent_reads.empty()) {
      os << " absent=[";
      for (size_t i = 0; i < absent_reads.size(); ++i) {
        if (i) os << ",";
        os << absent_reads[i];
      }
      os << "]";
    }
    if (for_update) os << " for_update";
    if (range_count > 0) {
      os << " range=[" << range_first << "," << range_first + range_count
         << ")";
    }
  } else if (op == OpType::kWrite) {
    os << " ws=[";
    for (size_t i = 0; i < write_set.size(); ++i) {
      if (i) os << ",";
      os << write_set[i].key << ":" << write_set[i].value;
    }
    os << "]";
  }
  if (il != IsolationLevel::kSerializable) {
    os << " il=" << IsolationLevelName(il);
  }
  os << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Trace& t) {
  return os << t.ToString();
}

Trace MakeReadTrace(TxnId txn, ClientId client, TimeInterval iv,
                    std::vector<ReadAccess> rs) {
  Trace t;
  t.interval = iv;
  t.op = OpType::kRead;
  t.txn = txn;
  t.client = client;
  t.read_set = std::move(rs);
  return t;
}

Trace MakeWriteTrace(TxnId txn, ClientId client, TimeInterval iv,
                     std::vector<WriteAccess> ws) {
  Trace t;
  t.interval = iv;
  t.op = OpType::kWrite;
  t.txn = txn;
  t.client = client;
  t.write_set = std::move(ws);
  return t;
}

Trace MakeCommitTrace(TxnId txn, ClientId client, TimeInterval iv) {
  Trace t;
  t.interval = iv;
  t.op = OpType::kCommit;
  t.txn = txn;
  t.client = client;
  return t;
}

Trace MakeAbortTrace(TxnId txn, ClientId client, TimeInterval iv) {
  Trace t;
  t.interval = iv;
  t.op = OpType::kAbort;
  t.txn = txn;
  t.client = client;
  return t;
}

}  // namespace leopard
