#ifndef LEOPARD_TRACE_TRACE_H_
#define LEOPARD_TRACE_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/interval.h"

namespace leopard {

/// Transaction identifier. Ids are unique across the whole run; id 0 is the
/// pseudo-transaction that loads the initial database state.
using TxnId = uint64_t;

/// Client (connection/session) identifier. A client issues operations
/// strictly sequentially, so its traces have increasing `ts_bef`.
using ClientId = uint32_t;

/// Record key and value. Verification identifies versions by the value a
/// write installs, so workloads that want fully-deducible dependencies write
/// globally unique values (the paper's BlindW-RW does exactly this, while
/// SmallBank's `amalgamate` deliberately does not — §VI-D).
using Key = uint64_t;
using Value = uint64_t;

constexpr TxnId kLoadTxnId = 0;

/// Value installed by a DELETE: a tombstone version. Ordinary writes never
/// use it (client values stay below 2^61; load values use the top bit with
/// low key bits).
constexpr Value kTombstoneValue = ~0ULL;

enum class OpType : uint8_t {
  kRead = 0,
  kWrite = 1,
  kCommit = 2,
  kAbort = 3,
};

const char* OpTypeName(OpType op);

/// ANSI-style isolation levels. Lives here (not txn/) because traces carry
/// the declaring session's level: real fleets run RC, RR, SI and SER
/// sessions side-by-side against the same data, and the verifier must judge
/// each transaction only by the rules its own level promises. Ordered from
/// weakest to strongest so `il >= kRepeatableRead` reads naturally.
enum class IsolationLevel : uint8_t {
  kReadCommitted = 0,   ///< statement-level consistent read
  kRepeatableRead,      ///< transaction-level consistent read, no FUW
  kSnapshotIsolation,   ///< transaction-level consistent read + FUW
  kSerializable,        ///< adds the protocol's serialization certifier
};

const char* IsolationLevelName(IsolationLevel il);

/// One element of a read set: the key and the value the client observed.
struct ReadAccess {
  Key key = 0;
  Value value = 0;

  friend bool operator==(const ReadAccess&, const ReadAccess&) = default;
};

/// One element of a write set: the key and the value the client installed.
struct WriteAccess {
  Key key = 0;
  Value value = 0;

  friend bool operator==(const WriteAccess&, const WriteAccess&) = default;
};

/// The interval-based trace of one database operation (§IV-A):
/// T = {ts_bef, ts_aft, r_t(rs) / w_t(ws) / c_t / a_t}.
///
/// Collected entirely on the client side — no DBMS kernel or application
/// logic changes — which is what makes Leopard a black-box verifier.
struct Trace {
  TimeInterval interval;
  OpType op = OpType::kRead;
  TxnId txn = 0;
  ClientId client = 0;
  std::vector<ReadAccess> read_set;    // populated for kRead
  std::vector<WriteAccess> write_set;  // populated for kWrite

  /// Read statements the client issued that found *no* row (deleted or
  /// never inserted). The verifier checks absence like any other read: a
  /// certainly-visible non-tombstone version refutes it.
  std::vector<Key> absent_reads;

  /// True for locking reads (SELECT ... FOR UPDATE): the statement
  /// acquired exclusive locks and read current, not snapshot, state.
  bool for_update = false;

  /// For range reads: the scanned key range [range_first, range_first +
  /// range_count). Keys in the range missing from read_set were absent.
  Key range_first = 0;
  uint32_t range_count = 0;

  /// Isolation level the issuing session declared for this transaction.
  /// Untagged traces default to SERIALIZABLE, so legacy histories keep
  /// today's full-strength verdicts bit-for-bit (the all-SER differential).
  IsolationLevel il = IsolationLevel::kSerializable;

  /// Runtime-only stage-latency anchor: obs::NowNs() when the verifier
  /// first saw this trace (server read for networked sessions, push for
  /// in-process ones). 0 = unstamped. Not part of the trace file format;
  /// never serialized by trace_io.
  uint64_t ingest_ns = 0;

  Timestamp ts_bef() const { return interval.bef; }
  Timestamp ts_aft() const { return interval.aft; }

  /// Rough live-memory footprint in bytes, used by pipeline/verifier memory
  /// accounting in the benchmarks.
  size_t ApproxBytes() const {
    return sizeof(Trace) + read_set.capacity() * sizeof(ReadAccess) +
           write_set.capacity() * sizeof(WriteAccess) +
           absent_reads.capacity() * sizeof(Key);
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Trace& t);

/// Convenience constructors used pervasively by tests.
Trace MakeReadTrace(TxnId txn, ClientId client, TimeInterval iv,
                    std::vector<ReadAccess> rs);
Trace MakeWriteTrace(TxnId txn, ClientId client, TimeInterval iv,
                     std::vector<WriteAccess> ws);
Trace MakeCommitTrace(TxnId txn, ClientId client, TimeInterval iv);
Trace MakeAbortTrace(TxnId txn, ClientId client, TimeInterval iv);

}  // namespace leopard

#endif  // LEOPARD_TRACE_TRACE_H_
