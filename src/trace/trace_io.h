#ifndef LEOPARD_TRACE_TRACE_IO_H_
#define LEOPARD_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace leopard {

/// Binary trace-log serialization, so traces collected on client machines
/// can be shipped to and replayed by an offline verifier.
///
/// File layout: an 8-byte magic/version header, then one record per trace:
///   u8 op | u32 client | u64 txn | u64 ts_bef | u64 ts_aft |
///   u32 n_reads  { u64 key | u64 value } *
///   u32 n_writes { u64 key | u64 value } *
/// followed by an 8-byte integrity footer:
///   0xFF 'C' 'R' 'C' | u32 crc32
/// where crc32 (reflected, poly 0xEDB88320) covers every preceding byte.
/// The 0xFF sentinel cannot begin a record (op codes are <= 3), so the
/// footer is unambiguous. Files written before the footer existed decode
/// fine — the reader warns and skips verification. A present-but-wrong
/// checksum is a hard error. All integers little-endian.
///
/// Writers append traces of ONE client stream per file (ts_bef
/// non-decreasing), matching how the tracer collects them.

/// Writes `traces` to `path`, replacing any existing file.
Status WriteTraceFile(const std::string& path,
                      const std::vector<Trace>& traces);

/// Reads a trace file written by WriteTraceFile.
StatusOr<std::vector<Trace>> ReadTraceFile(const std::string& path);

/// In-memory encode/decode used by the file functions (and tests).
/// EncodeTraces appends the CRC32 footer; DecodeTraces verifies it when
/// present (sets *had_crc accordingly) and fails on a mismatch.
std::string EncodeTraces(const std::vector<Trace>& traces);

struct DecodeOptions {
  /// Reject a stream with no (or a truncated) CRC32 footer instead of
  /// treating it as a pre-CRC legacy file. Durable readers (WAL segments,
  /// checkpoint sections) set this: for them a missing footer means the
  /// file was truncated past a record boundary, not written by an old tool.
  bool require_crc = false;
};

StatusOr<std::vector<Trace>> DecodeTraces(const std::string& bytes,
                                          bool* had_crc = nullptr);
StatusOr<std::vector<Trace>> DecodeTraces(const std::string& bytes,
                                          const DecodeOptions& options,
                                          bool* had_crc = nullptr);

/// CRC32 (reflected, poly 0xEDB88320) used by the trace-file footer.
uint32_t Crc32(const char* data, size_t n);

/// Record-level codec shared by the file format above and the network wire
/// protocol (src/net/wire): one trace record, no file header.
void AppendTraceRecord(std::string& out, const Trace& t);

/// Decodes one record from `bytes` starting at `pos`, advancing `pos` past
/// the record on success. Validates the op code, flags and set sizes
/// against the remaining bytes, so a corrupt length fails cleanly instead
/// of allocating gigabytes or yielding a partially-parsed trace.
Status DecodeTraceRecord(const std::string& bytes, size_t& pos, Trace& out);

}  // namespace leopard

#endif  // LEOPARD_TRACE_TRACE_IO_H_
