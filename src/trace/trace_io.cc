#include "trace/trace_io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace leopard {

namespace {

constexpr char kMagic[8] = {'L', 'E', 'O', 'T', 'R', 'C', '0', '2'};

/// Footer sentinel: 0xFF can never start a record (op codes are <= 3).
constexpr char kCrcSentinel[4] = {'\xff', 'C', 'R', 'C'};
constexpr size_t kCrcFooterBytes = 8;  // sentinel + u32 checksum

/// Hard ceiling on read/write/absent set sizes. Every entry costs at least
/// 8 bytes on the wire, so any count beyond this is a corrupt or hostile
/// length field, not a real trace.
constexpr uint32_t kMaxSetEntries = 1u << 24;

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class Reader {
 public:
  Reader(const std::string& bytes, size_t start)
      : bytes_(bytes), pos_(start) {}

  bool GetU8(uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return true;
  }
  bool GetU64(uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return true;
  }
  /// True when a count field claiming `n` entries of `entry_bytes` each can
  /// still fit in the remaining input — checked *before* reserving, so an
  /// absurd length cannot trigger a huge allocation.
  bool CountFits(uint32_t n, size_t entry_bytes) const {
    return n <= kMaxSetEntries &&
           static_cast<uint64_t>(n) * entry_bytes <= bytes_.size() - pos_;
  }
  size_t pos() const { return pos_; }
  bool Done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// Bit 0x04 of the op byte flags an isolation-level tail: one u8 isolation
// level after the range footer. Emitted only for non-SERIALIZABLE traces, so
// an all-SER (or legacy) history encodes byte-identically to the pre-IL
// format and old decoders keep reading it. Op codes occupy the low two bits;
// 0xFF still unambiguously starts the CRC footer.
constexpr uint8_t kOpIlFlag = 0x04;

void AppendTraceRecord(std::string& out, const Trace& t) {
  const bool tagged = t.il != IsolationLevel::kSerializable;
  PutU8(out, static_cast<uint8_t>(t.op) | (tagged ? kOpIlFlag : 0));
  PutU32(out, t.client);
  PutU64(out, t.txn);
  PutU64(out, t.ts_bef());
  PutU64(out, t.ts_aft());
  PutU32(out, static_cast<uint32_t>(t.read_set.size()));
  for (const auto& r : t.read_set) {
    PutU64(out, r.key);
    PutU64(out, r.value);
  }
  PutU32(out, static_cast<uint32_t>(t.write_set.size()));
  for (const auto& w : t.write_set) {
    PutU64(out, w.key);
    PutU64(out, w.value);
  }
  PutU32(out, static_cast<uint32_t>(t.absent_reads.size()));
  for (Key k : t.absent_reads) PutU64(out, k);
  PutU8(out, t.for_update ? 1 : 0);
  PutU64(out, t.range_first);
  PutU32(out, t.range_count);
  if (tagged) PutU8(out, static_cast<uint8_t>(t.il));
}

Status DecodeTraceRecord(const std::string& bytes, size_t& pos, Trace& out) {
  Reader reader(bytes, pos);
  Trace t;
  uint8_t op = 0;
  uint32_t client = 0;
  uint64_t txn = 0, bef = 0, aft = 0;
  uint32_t n = 0;
  if (!reader.GetU8(op) || !reader.GetU32(client) || !reader.GetU64(txn) ||
      !reader.GetU64(bef) || !reader.GetU64(aft)) {
    return Status::InvalidArgument("truncated trace header");
  }
  if ((op & ~kOpIlFlag) > 3) return Status::InvalidArgument("invalid op code");
  const bool tagged = (op & kOpIlFlag) != 0;
  t.op = static_cast<OpType>(op & ~kOpIlFlag);
  t.client = client;
  t.txn = txn;
  t.interval = {bef, aft};
  if (!reader.GetU32(n)) return Status::InvalidArgument("truncated reads");
  if (!reader.CountFits(n, 16)) {
    return Status::InvalidArgument("absurd read-set length");
  }
  t.read_set.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ReadAccess r;
    if (!reader.GetU64(r.key) || !reader.GetU64(r.value)) {
      return Status::InvalidArgument("truncated read entry");
    }
    t.read_set.push_back(r);
  }
  if (!reader.GetU32(n)) {
    return Status::InvalidArgument("truncated writes");
  }
  if (!reader.CountFits(n, 16)) {
    return Status::InvalidArgument("absurd write-set length");
  }
  t.write_set.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WriteAccess w;
    if (!reader.GetU64(w.key) || !reader.GetU64(w.value)) {
      return Status::InvalidArgument("truncated write entry");
    }
    t.write_set.push_back(w);
  }
  if (!reader.GetU32(n)) {
    return Status::InvalidArgument("truncated absent reads");
  }
  if (!reader.CountFits(n, 8)) {
    return Status::InvalidArgument("absurd absent-read length");
  }
  t.absent_reads.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Key k = 0;
    if (!reader.GetU64(k)) {
      return Status::InvalidArgument("truncated absent key");
    }
    t.absent_reads.push_back(k);
  }
  uint8_t for_update = 0;
  if (!reader.GetU8(for_update) || !reader.GetU64(t.range_first) ||
      !reader.GetU32(t.range_count)) {
    return Status::InvalidArgument("truncated trace footer");
  }
  if (for_update > 1) return Status::InvalidArgument("invalid for_update flag");
  t.for_update = for_update != 0;
  if (tagged) {
    uint8_t il = 0;
    if (!reader.GetU8(il)) {
      return Status::InvalidArgument("truncated isolation tail");
    }
    if (il > static_cast<uint8_t>(IsolationLevel::kSerializable)) {
      return Status::InvalidArgument("invalid isolation level");
    }
    t.il = static_cast<IsolationLevel>(il);
  }
  pos = reader.pos();
  out = std::move(t);
  return Status::Ok();
}

std::string EncodeTraces(const std::vector<Trace>& traces) {
  std::string out(kMagic, sizeof(kMagic));
  for (const Trace& t : traces) AppendTraceRecord(out, t);
  const uint32_t crc = Crc32(out.data(), out.size());
  out.append(kCrcSentinel, sizeof(kCrcSentinel));
  PutU32(out, crc);
  return out;
}

StatusOr<std::vector<Trace>> DecodeTraces(const std::string& bytes,
                                          bool* had_crc) {
  return DecodeTraces(bytes, DecodeOptions{}, had_crc);
}

StatusOr<std::vector<Trace>> DecodeTraces(const std::string& bytes,
                                          const DecodeOptions& options,
                                          bool* had_crc) {
  if (had_crc != nullptr) *had_crc = false;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a leopard trace file");
  }
  size_t pos = sizeof(kMagic);
  std::vector<Trace> out;
  while (pos < bytes.size()) {
    const size_t left = bytes.size() - pos;
    if (static_cast<uint8_t>(bytes[pos]) == 0xFF) {
      // 0xFF can only start the footer sentinel (op codes are <= 3), so
      // anything other than a complete, matching footer here is a file cut
      // mid-footer — integrity is unverifiable, never "legacy".
      if (left < kCrcFooterBytes ||
          std::memcmp(bytes.data() + pos, kCrcSentinel,
                      sizeof(kCrcSentinel)) != 0) {
        return Status::InvalidArgument(
            "truncated integrity footer (partial CRC sentinel at byte " +
            std::to_string(pos) + ")");
      }
      if (left > kCrcFooterBytes) {
        return Status::InvalidArgument("bytes after integrity footer");
      }
      uint32_t stored = 0;
      for (int i = 0; i < 4; ++i) {
        stored |= static_cast<uint32_t>(static_cast<uint8_t>(
                      bytes[pos + sizeof(kCrcSentinel) + i]))
                  << (8 * i);
      }
      const uint32_t computed = Crc32(bytes.data(), pos);
      if (stored != computed) {
        return Status::InvalidArgument("trace file checksum mismatch");
      }
      if (had_crc != nullptr) *had_crc = true;
      return out;
    }
    Trace t;
    Status s = DecodeTraceRecord(bytes, pos, t);
    if (!s.ok()) {
      return Status::InvalidArgument(
          s.message() + " (record " + std::to_string(out.size()) +
          " at byte " + std::to_string(pos) + ")");
    }
    out.push_back(std::move(t));
  }
  if (options.require_crc) {
    // A WAL/checkpoint stream always ends in a footer; its absence means
    // the tail was sliced off exactly at a record boundary.
    return Status::InvalidArgument(
        "missing integrity footer (file truncated at a record boundary?)");
  }
  return out;  // legacy file: no footer, nothing to verify
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<Trace>& traces) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::Internal("cannot open " + path + " for write");
  std::string bytes = EncodeTraces(traces);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<std::vector<Trace>> ReadTraceFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound(path + ": cannot open");
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  bool had_crc = false;
  auto traces = DecodeTraces(bytes, &had_crc);
  if (!traces.ok()) {
    return Status(traces.status().code(),
                  path + ": " + traces.status().message());
  }
  if (!had_crc) {
    std::fprintf(stderr,
                 "[trace_io] warning: %s has no integrity footer "
                 "(pre-CRC writer); skipping checksum verification\n",
                 path.c_str());
  }
  return traces;
}

}  // namespace leopard
