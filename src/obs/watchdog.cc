#include "obs/watchdog.h"

#include <chrono>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace leopard {
namespace obs {

void Watchdog::Slot::Beat() {
  last_beat_ns.store(NowNs(), std::memory_order_relaxed);
}

void Watchdog::Slot::Resume() {
  // Order matters: refresh the heartbeat before clearing `suspended`, or the
  // monitor could observe un-suspended + stale in the gap and false-flag.
  last_beat_ns.store(NowNs(), std::memory_order_relaxed);
  suspended_.store(false, std::memory_order_release);
}

Watchdog::Watchdog(const Options& opts) : opts_(opts) {
  if (opts_.metrics != nullptr) {
    m_stalled_ = opts_.metrics->gauge("verifier.watchdog.stalled");
  }
  if (opts_.check_interval_ms > 0) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

Watchdog::~Watchdog() { Stop(); }

Watchdog::Slot* Watchdog::Register(const std::string& name) {
  auto slot = std::make_unique<Slot>();
  slot->name_ = name;
  slot->last_beat_ns.store(NowNs(), std::memory_order_relaxed);
  Slot* raw = slot.get();
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::move(slot));
  return raw;
}

void Watchdog::Retire(Slot* slot) {
  if (slot != nullptr) slot->retired_.store(true, std::memory_order_release);
}

std::vector<std::string> Watchdog::StalledThreads() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : slots_) {
    if (slot->flagged) out.push_back(slot->name_);
  }
  return out;
}

void Watchdog::CheckNow() { Sweep(NowNs()); }

void Watchdog::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::MonitorLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.check_interval_ms));
    if (stop_.load(std::memory_order_relaxed)) break;
    Sweep(NowNs());
  }
}

void Watchdog::Sweep(uint64_t now_ns) {
  uint64_t threshold_ns = opts_.stall_threshold_ms * 1000000ull;
  size_t n_stalled = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot->retired_.load(std::memory_order_acquire)) {
      slot->flagged = false;
      continue;
    }
    if (slot->suspended_.load(std::memory_order_acquire)) {
      slot->flagged = false;
      continue;
    }
    uint64_t beat = slot->last_beat_ns.load(std::memory_order_relaxed);
    bool stale = now_ns > beat && now_ns - beat > threshold_ns;
    if (stale && !slot->flagged) {
      slot->flagged = true;
      if (opts_.events != nullptr) {
        opts_.events->Recordf(
            EventSeverity::kWarn, "watchdog",
            "thread %s stalled: no heartbeat for %llu ms", slot->name_.c_str(),
            static_cast<unsigned long long>((now_ns - beat) / 1000000ull));
      }
    } else if (!stale && slot->flagged) {
      slot->flagged = false;
      if (opts_.events != nullptr) {
        opts_.events->Recordf(EventSeverity::kInfo, "watchdog",
                              "thread %s recovered", slot->name_.c_str());
      }
    }
    if (slot->flagged) ++n_stalled;
  }
  stalled_.store(n_stalled, std::memory_order_relaxed);
  if (m_stalled_ != nullptr) m_stalled_->Set(static_cast<int64_t>(n_stalled));
}

}  // namespace obs
}  // namespace leopard
