#ifndef LEOPARD_OBS_WATCHDOG_H_
#define LEOPARD_OBS_WATCHDOG_H_

// Per-thread heartbeat watchdog (DESIGN: live introspection).
//
// Long-lived pipeline threads (shard workers, the SC certifier, network
// reader threads, the diagnosis worker) register a heartbeat slot and call
// Beat() once per loop iteration — a single relaxed atomic store. A monitor
// thread periodically flags any slot whose heartbeat is older than the stall
// threshold: it records a journal event, bumps the
// `verifier.watchdog.stalled` gauge, and degrades /healthz — turning a
// silently wedged thread into an alarm instead of a mystery.
//
// Threads that legitimately block for unbounded time (waiting on a condvar
// with no work, running a minutes-long diagnosis) wrap the wait in
// Suspend()/Resume() so idleness is not misreported as a stall.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace leopard {
namespace obs {

class EventJournal;
class Gauge;
class MetricsRegistry;

class Watchdog {
 public:
  struct Options {
    uint64_t check_interval_ms = 1000;
    uint64_t stall_threshold_ms = 5000;
    MetricsRegistry* metrics = nullptr;  // optional: verifier.watchdog.*
    EventJournal* events = nullptr;      // optional: stall/recover events
  };

  /// Heartbeat handle owned by the Watchdog; stable address for the
  /// registering thread's lifetime.
  class Slot {
   public:
    /// Refreshes the heartbeat. Wait-free; call once per loop iteration.
    void Beat();
    /// Marks the thread as intentionally idle/blocked — the monitor skips
    /// suspended slots. Resume() also refreshes the heartbeat.
    void Suspend() { suspended_.store(true, std::memory_order_relaxed); }
    void Resume();
    const std::string& name() const { return name_; }

   private:
    friend class Watchdog;
    std::string name_;
    std::atomic<uint64_t> last_beat_ns{0};
    std::atomic<bool> suspended_{false};
    std::atomic<bool> retired_{false};
    bool flagged = false;  // monitor-thread-only state
  };

  explicit Watchdog(const Options& opts);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a heartbeat slot (initially beating now). Thread-safe.
  Slot* Register(const std::string& name);
  /// Marks the slot as gone (its thread exited); the monitor ignores it.
  /// The Slot storage stays valid until the Watchdog is destroyed.
  void Retire(Slot* slot);

  /// Number of currently stalled (flagged) slots — cheap, for /healthz.
  size_t stalled_count() const {
    return stalled_.load(std::memory_order_relaxed);
  }
  /// Names of the currently flagged slots, for /healthz and /statusz bodies.
  std::vector<std::string> StalledThreads() const;

  /// Runs one monitor sweep synchronously (deterministic tests).
  void CheckNow();

  /// Stops the monitor thread. Idempotent; also run by the destructor.
  void Stop();

 private:
  void MonitorLoop();
  void Sweep(uint64_t now_ns);

  Options opts_;
  mutable std::mutex mu_;  // guards slots_ vector growth + StalledThreads
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<size_t> stalled_{0};
  Gauge* m_stalled_ = nullptr;

  std::atomic<bool> stop_{false};
  std::thread monitor_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_WATCHDOG_H_
