#include "obs/http_endpoint.h"

#include <cstdio>
#include <cstdlib>

#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/registry.h"
#include "obs/watchdog.h"

namespace leopard {
namespace obs {

namespace {

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Bad Request";
  }
}

/// Extracts the value of `key` from a query string "a=1&b=2"; empty if
/// absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

}  // namespace

HttpEndpoint::HttpEndpoint(const Options& opts) : opts_(opts) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

Status HttpEndpoint::Start() {
  auto listener = net::Listener::Listen(opts_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  start_ns_ = NowNs();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpEndpoint::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
}

void HttpEndpoint::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept(opts_.accept_timeout_ms);
    if (!accepted.ok()) continue;  // timeout or transient error: poll stop_
    ServeConnection(std::move(accepted).value());
  }
}

void HttpEndpoint::ServeConnection(net::Socket sock) {
  // Scrapers are cooperative; a short timeout keeps a stuck client from
  // wedging the (single) acceptor thread.
  (void)sock.SetRecvTimeoutMs(2000);
  (void)sock.SetSendTimeoutMs(2000);

  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > opts_.max_request_bytes) return;
    auto got = sock.Recv(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) return;
    request.append(buf, got.value());
  }

  // Request line: METHOD SP PATH SP VERSION.
  size_t eol = request.find("\r\n");
  std::string line = request.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string target = sp2 == std::string::npos
                           ? ""
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);

  int code;
  std::string body;
  std::string content_type;
  if (method != "GET") {
    code = 405;
    body = "method not allowed\n";
    content_type = "text/plain; charset=utf-8";
  } else {
    code = HandleRoute(target, body, content_type);
  }

  char header[256];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        code, ReasonPhrase(code), content_type.c_str(),
                        body.size());
  if (n <= 0) return;
  if (!sock.SendAll(header, static_cast<size_t>(n)).ok()) return;
  (void)sock.SendAll(body.data(), body.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
}

int HttpEndpoint::HandleRoute(const std::string& path_and_query,
                              std::string& body,
                              std::string& content_type) const {
  size_t q = path_and_query.find('?');
  std::string path = path_and_query.substr(0, q);
  std::string query =
      q == std::string::npos ? "" : path_and_query.substr(q + 1);

  if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsBody();
    return 200;
  }
  if (path == "/healthz") {
    content_type = "text/plain; charset=utf-8";
    int code = 200;
    body = HealthzBody(code);
    return code;
  }
  if (path == "/statusz") {
    content_type = "application/json";
    body = StatuszBody(query);
    return 200;
  }
  content_type = "text/plain; charset=utf-8";
  body = "not found\n";
  return 404;
}

std::string HttpEndpoint::MetricsBody() const {
  std::string body;
  if (opts_.registry != nullptr) {
    body = MetricsToPrometheus(*opts_.registry);
  }
  body += "# TYPE leopard_uptime_seconds gauge\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "leopard_uptime_seconds %.3f\n",
                static_cast<double>(NowNs() - start_ns_) / 1e9);
  body += buf;
  if (!opts_.build_info.empty()) {
    body += "# TYPE leopard_build_info gauge\n";
    body += "leopard_build_info{version=\"" + PromEscapeLabel(opts_.build_info) +
            "\"} 1\n";
  }
  return body;
}

std::string HttpEndpoint::HealthzBody(int& code) const {
  code = 200;
  std::string body = "ok\n";
  if (opts_.watchdog != nullptr && opts_.watchdog->stalled_count() > 0) {
    code = 503;
    body = "degraded\n";
    for (const std::string& name : opts_.watchdog->StalledThreads()) {
      body += "stalled: " + name + "\n";
    }
  }
  return body;
}

std::string HttpEndpoint::StatuszBody(const std::string& query) const {
  std::string out = "{";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"uptime_s\":%.3f",
                static_cast<double>(NowNs() - start_ns_) / 1e9);
  out += buf;
  out += ",\"build\":\"" + JsonEscape(opts_.build_info) + "\"";
  if (opts_.watchdog != nullptr) {
    out += ",\"watchdog\":{\"stalled\":[";
    bool first = true;
    for (const std::string& name : opts_.watchdog->StalledThreads()) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\"";
    }
    out += "]}";
  }
  if (opts_.statusz_fields) {
    std::string extra = opts_.statusz_fields();
    if (!extra.empty()) {
      out += ",";
      out += extra;
    }
  }
  if (opts_.events != nullptr) {
    std::string n = QueryParam(query, "events");
    if (!n.empty()) {
      unsigned long count = std::strtoul(n.c_str(), nullptr, 10);
      out += ",\"events\":" + opts_.events->ToJson(count);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace leopard
