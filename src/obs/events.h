#ifndef LEOPARD_OBS_EVENTS_H_
#define LEOPARD_OBS_EVENTS_H_

// Fixed-size lock-free event journal (DESIGN: live introspection).
//
// The verifier runs for days; when something goes wrong the interesting
// question is "what state transitions led here?", not "what is the counter
// value now?". The journal is a ring of the last N discrete events (session
// open/close, shard stall, backpressure engage/release, GC advance,
// violation, diagnosis start/done). Writers are wait-free apart from one
// fetch_add; payloads are fixed-size char arrays so recording never
// allocates and is safe from latency-sensitive pipeline threads.
//
// Concurrency: each slot carries a seqlock-style version. A writer claims a
// global sequence number with fetch_add, bumps the slot version to odd
// (in-progress), fills the payload, then publishes an even version. Readers
// (the HTTP endpoint, the fatal-signal dump) copy the slot and retry/skip if
// the version changed underneath them — a torn slot is dropped, never
// half-reported.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace leopard {
namespace obs {

enum class EventSeverity : uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

const char* EventSeverityName(EventSeverity s);

/// One published journal entry, as seen by readers.
struct Event {
  uint64_t seq = 0;    // global sequence number, 0-based, never reused
  uint64_t ts_ns = 0;  // obs::NowNs() at record time
  EventSeverity severity = EventSeverity::kInfo;
  char component[24] = {0};  // e.g. "net.session3", "shard1.worker"
  char message[104] = {0};   // truncated, always NUL-terminated
};

class EventJournal {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit EventJournal(size_t capacity = 1024);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Wait-free and allocation-free; safe from any thread. `component` and
  /// `message` are truncated to the Event field sizes.
  void Record(EventSeverity severity, const char* component,
              const char* message);

  /// Printf-style convenience; formats into a stack buffer (no allocation).
  void Recordf(EventSeverity severity, const char* component, const char* fmt,
               ...) __attribute__((format(printf, 4, 5)));

  /// The most recent (up to) `max_n` events, oldest first. Slots that are
  /// mid-write or overwritten during the copy are skipped.
  std::vector<Event> Snapshot(size_t max_n) const;

  /// Snapshot rendered as a JSON array (used by /statusz?events=N).
  std::string ToJson(size_t max_n) const;

  /// Total events ever recorded (>= capacity means older ones were dropped).
  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump the journal
  /// to stderr and (if `path` is non-empty) to a JSON file using only
  /// async-signal-safe calls, then re-raise with the default disposition.
  /// One journal per process; a second call replaces the first.
  static void InstallFatalDump(const EventJournal* journal,
                               const std::string& path);

 private:
  struct Slot {
    // Even = published `(version/2)`-th write; odd = write in progress.
    std::atomic<uint64_t> version{0};
    uint64_t seq = 0;
    uint64_t ts_ns = 0;
    EventSeverity severity = EventSeverity::kInfo;
    char component[24] = {0};
    char message[104] = {0};
  };

  friend void FatalDumpLocked(int fd, const EventJournal* j, bool json);

  size_t capacity_;  // power of two
  size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_seq_{0};
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_EVENTS_H_
