#include "obs/prom.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace leopard {
namespace obs {

namespace {

std::string PromDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string PromSanitizeName(const std::string& name) {
  std::string out = "leopard_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PromEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsRegistry& registry) {
  std::ostringstream os;

  registry.VisitCounters([&](const std::string& name, const Counter& c) {
    std::string n = PromSanitizeName(name);
    os << "# TYPE " << n << " counter\n";
    os << n << " " << c.Value() << "\n";
  });

  registry.VisitGauges([&](const std::string& name, const Gauge& g) {
    std::string n = PromSanitizeName(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << g.Value() << "\n";
    os << "# TYPE " << n << "_max gauge\n";
    os << n << "_max " << g.Max() << "\n";
  });

  registry.VisitHistograms([&](const std::string& name, const Histogram& h) {
    std::string n = PromSanitizeName(name);
    Histogram::Snapshot s = h.Snap();
    os << "# TYPE " << n << " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      cumulative += s.buckets[i];
      // The last bucket's upper bound is UINT64_MAX, which in the le-label
      // would duplicate +Inf's role with a misleading finite number; fold it
      // into +Inf instead.
      if (i >= Histogram::kBuckets - 1) break;
      os << n << "_bucket{le=\"" << Histogram::BucketUpperNs(i) << "\"} "
         << cumulative << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    os << n << "_sum " << s.sum_ns << "\n";
    os << n << "_count " << s.count << "\n";
    // Derived quantiles as plain gauges: cheaper for dashboards than
    // recomputing from log2 buckets, and identical to the JSON/CSV export.
    os << "# TYPE " << n << "_p50_ns gauge\n";
    os << n << "_p50_ns " << PromDouble(h.PercentileNs(50)) << "\n";
    os << "# TYPE " << n << "_p95_ns gauge\n";
    os << n << "_p95_ns " << PromDouble(h.PercentileNs(95)) << "\n";
    os << "# TYPE " << n << "_p99_ns gauge\n";
    os << n << "_p99_ns " << PromDouble(h.PercentileNs(99)) << "\n";
  });

  return os.str();
}

}  // namespace obs
}  // namespace leopard
