#include "obs/progress.h"

#include <chrono>
#include <cinttypes>

namespace leopard {
namespace obs {

ProgressSnapshot SnapshotFromRegistry(MetricsRegistry& registry) {
  ProgressSnapshot s;
  s.verified = registry.counter("verifier.traces_processed")->Value();
  s.queue_depth = registry.gauge("pipeline.queue_depth")->Value();
  s.deps_total = registry.counter("verifier.deps_total")->Value();
  s.overlapped = registry.counter("verifier.overlapped_ww")->Value() +
                 registry.counter("verifier.overlapped_wr")->Value() +
                 registry.counter("verifier.overlapped_rw")->Value();
  s.uncertain = registry.counter("verifier.uncertain_ww")->Value() +
                registry.counter("verifier.uncertain_wr")->Value();
  s.violations = registry.counter("verifier.violations.cr")->Value() +
                 registry.counter("verifier.violations.me")->Value() +
                 registry.counter("verifier.violations.fuw")->Value() +
                 registry.counter("verifier.violations.sc")->Value();
  return s;
}

ProgressReporter::ProgressReporter(Options options,
                                   std::function<ProgressSnapshot()> sampler)
    : options_(std::move(options)),
      sampler_(std::move(sampler)),
      last_tick_ns_(NowNs()),
      thread_([this] { Loop(); }) {}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final sample: short runs still export at least one point, and the last
  // exported sample reflects the finished state.
  Tick();
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

void ProgressReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (stop_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void ProgressReporter::Tick() {
  ProgressSnapshot snap = sampler_();
  uint64_t now_ns = NowNs();
  double dt_s = static_cast<double>(now_ns - last_tick_ns_) / 1e9;
  double tps = dt_s > 0
                   ? static_cast<double>(snap.verified - last_verified_) / dt_s
                   : 0.0;
  last_verified_ = snap.verified;
  last_tick_ns_ = now_ns;
  double beta = snap.deps_total > 0 ? static_cast<double>(snap.overlapped) /
                                          static_cast<double>(snap.deps_total)
                                    : 0.0;
  ticks_.Inc();

  if (options_.registry != nullptr) {
    const std::string& p = options_.series_prefix;
    options_.registry->series(p + ".throughput_tps")->Append(now_ns, tps);
    options_.registry->series(p + ".verified")
        ->Append(now_ns, static_cast<double>(snap.verified));
    options_.registry->series(p + ".queue_depth")
        ->Append(now_ns, static_cast<double>(snap.queue_depth));
    options_.registry->series(p + ".beta")->Append(now_ns, beta);
    options_.registry->series(p + ".uncertain")
        ->Append(now_ns, static_cast<double>(snap.uncertain));
    options_.registry->series(p + ".violations")
        ->Append(now_ns, static_cast<double>(snap.violations));
  }

  if (options_.print) {
    std::fprintf(options_.out,
                 "[leopard] verified=%" PRIu64 " (%.0f traces/s) queue=%" PRId64
                 " beta=%.4f uncertain=%" PRIu64 " violations=%" PRIu64 "\n",
                 snap.verified, tps, snap.queue_depth, beta, snap.uncertain,
                 snap.violations);
    std::fflush(options_.out);
  }
}

}  // namespace obs
}  // namespace leopard
