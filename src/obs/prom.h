#ifndef LEOPARD_OBS_PROM_H_
#define LEOPARD_OBS_PROM_H_

#include <string>

#include "obs/registry.h"

namespace leopard {
namespace obs {

/// Renders the registry in the Prometheus text exposition format (0.0.4):
///
///   - counters  -> `leopard_<name>` counter
///   - gauges    -> `leopard_<name>` gauge plus `leopard_<name>_max` gauge
///                  (the high-water mark)
///   - histograms-> `leopard_<name>_bucket{le="<upper_ns>"}` cumulative
///                  buckets over the log2-ns layout (only non-empty buckets
///                  plus the mandatory `le="+Inf"`), `_sum`, `_count`, and
///                  derived `_p50_ns`/`_p95_ns`/`_p99_ns` gauges sharing
///                  Histogram::PercentileNs with the JSON/CSV exporters
///   - series    -> skipped (time series are an offline export shape; a
///                  scraper builds its own history)
///
/// Dotted metric names are sanitized to the Prometheus charset
/// ([a-zA-Z0-9_:], dots become underscores).
std::string MetricsToPrometheus(const MetricsRegistry& registry);

/// Maps an internal metric name onto [a-zA-Z0-9_:] with a `leopard_` prefix;
/// '.' becomes '_', other illegal characters become '_', and a leading digit
/// gains a '_' prefix. Exposed for the endpoint tests.
std::string PromSanitizeName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double quote
/// and newline are escaped. Exposed for the endpoint tests.
std::string PromEscapeLabel(const std::string& value);

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_PROM_H_
