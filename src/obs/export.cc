#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace leopard {
namespace obs {

/// Metric names are dotted identifiers, but escape defensively so the
/// output stays valid JSON whatever callers register.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\n";

  os << "  \"counters\": {";
  bool first = true;
  registry.VisitCounters([&](const std::string& name, const Counter& c) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << c.Value();
    first = false;
  });
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  registry.VisitGauges([&](const std::string& name, const Gauge& g) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"value\": " << g.Value() << ", \"max\": " << g.Max() << "}";
    first = false;
  });
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  registry.VisitHistograms([&](const std::string& name, const Histogram& h) {
    Histogram::Snapshot s = h.Snap();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << s.count << ", \"sum_ns\": " << s.sum_ns
       << ", \"min_ns\": " << s.min_ns << ", \"max_ns\": " << s.max_ns
       << ", \"mean_ns\": " << JsonDouble(h.MeanNs())
       << ", \"p50_ns\": " << JsonDouble(h.PercentileNs(50))
       << ", \"p95_ns\": " << JsonDouble(h.PercentileNs(95))
       << ", \"p99_ns\": " << JsonDouble(h.PercentileNs(99))
       << ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      if (!first_bucket) os << ", ";
      os << "[" << Histogram::BucketLowerNs(i) << ", " << s.buckets[i] << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  });
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"series\": {";
  first = true;
  registry.VisitSeries([&](const std::string& name, const Series& series) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": [";
    bool first_point = true;
    for (const Series::Point& p : series.Snap()) {
      if (!first_point) os << ", ";
      os << "[" << p.t_ns << ", " << JsonDouble(p.value) << "]";
      first_point = false;
    }
    os << "]";
    first = false;
  });
  os << (first ? "" : "\n  ") << "}\n";

  os << "}\n";
  return os.str();
}

std::string MetricsToCsv(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "type,name,field,value\n";
  registry.VisitCounters([&](const std::string& name, const Counter& c) {
    os << "counter," << name << ",value," << c.Value() << "\n";
  });
  registry.VisitGauges([&](const std::string& name, const Gauge& g) {
    os << "gauge," << name << ",value," << g.Value() << "\n";
    os << "gauge," << name << ",max," << g.Max() << "\n";
  });
  registry.VisitHistograms([&](const std::string& name, const Histogram& h) {
    Histogram::Snapshot s = h.Snap();
    os << "histogram," << name << ",count," << s.count << "\n";
    os << "histogram," << name << ",sum_ns," << s.sum_ns << "\n";
    os << "histogram," << name << ",min_ns," << s.min_ns << "\n";
    os << "histogram," << name << ",max_ns," << s.max_ns << "\n";
    os << "histogram," << name << ",mean_ns," << JsonDouble(h.MeanNs())
       << "\n";
    os << "histogram," << name << ",p50_ns," << JsonDouble(h.PercentileNs(50))
       << "\n";
    os << "histogram," << name << ",p95_ns," << JsonDouble(h.PercentileNs(95))
       << "\n";
    os << "histogram," << name << ",p99_ns," << JsonDouble(h.PercentileNs(99))
       << "\n";
  });
  registry.VisitSeries([&](const std::string& name, const Series& series) {
    for (const Series::Point& p : series.Snap()) {
      os << "series," << name << ",t" << p.t_ns << ","
         << JsonDouble(p.value) << "\n";
    }
  });
  return os.str();
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path) {
  bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::string body = csv ? MetricsToCsv(registry) : MetricsToJson(registry);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file " + path);
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int rc = std::fclose(f);
  if (written != body.size() || rc != 0) {
    return Status::Internal("short write to metrics file " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace leopard
