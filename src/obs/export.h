#ifndef LEOPARD_OBS_EXPORT_H_
#define LEOPARD_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/registry.h"

namespace leopard {
namespace obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the metrics exporters, the
/// event journal and the /statusz endpoint.
std::string JsonEscape(const std::string& s);

/// Formats a double for JSON: "%.6g", non-finite values become 0.
std::string JsonDouble(double v);

/// Serializes the registry as a single JSON object:
///
///   {
///     "counters":   { "<name>": <value>, ... },
///     "gauges":     { "<name>": {"value": v, "max": m}, ... },
///     "histograms": { "<name>": {"count":, "sum_ns":, "min_ns":, "max_ns":,
///                                "mean_ns":, "p50_ns":, "p95_ns":, "p99_ns":,
///                                "buckets": [[lower_ns, count], ...]}, ... },
///     "series":     { "<name>": [[t_ns, value], ...], ... }
///   }
///
/// Bucket lists contain only non-empty buckets, keyed by the bucket's
/// inclusive lower bound in nanoseconds.
std::string MetricsToJson(const MetricsRegistry& registry);

/// Flat CSV with header `type,name,field,value` — one row per exported
/// scalar (histograms expand to count/sum/min/max/mean/p50/p95/p99 rows,
/// series to one row per sample with field "t<t_ns>").
std::string MetricsToCsv(const MetricsRegistry& registry);

/// Writes the registry to `path`: CSV when the path ends in ".csv",
/// JSON otherwise.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_EXPORT_H_
