#ifndef LEOPARD_OBS_SPAN_H_
#define LEOPARD_OBS_SPAN_H_

#include "obs/metrics.h"

namespace leopard {
namespace obs {

/// RAII timer: records the scope's wall duration into a histogram on
/// destruction. Null-safe — a ScopedSpan over a nullptr histogram costs one
/// branch and no clock read, so uninstrumented components keep their spans
/// in place at effectively zero cost.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* hist)
      : hist_(hist), start_ns_(hist ? NowNs() : 0) {}
  ~ScopedSpan() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_ns_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Detaches the span: nothing is recorded at destruction.
  void Cancel() { hist_ = nullptr; }

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_SPAN_H_
