#ifndef LEOPARD_OBS_METRICS_H_
#define LEOPARD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace leopard {
namespace obs {

/// Monotonic nanosecond timestamp used by all timing metrics (steady clock,
/// same time base as MonotonicClock so spans and traces are comparable).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. All operations are relaxed atomics:
/// increments from any thread never contend on a lock, and readers (the
/// progress reporter, exporters) observe a recent — not necessarily
/// instantaneous — value, which is all observability needs.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Overwrites the count. Intended for mirroring an externally-accumulated
  /// total (e.g. VerifierStats fields) into the registry, so exported values
  /// match the authoritative struct exactly.
  void Store(uint64_t value) { v_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depth, live transactions, bytes). Tracks a
/// high-water mark alongside the current value.
///
/// Ordering contract: all operations are relaxed. Set() racing with Add()
/// can lose the delta (last store wins) — metrics use either Set (mirroring
/// an authoritative value) or Add (owning the level), never both on the same
/// gauge. Value() and Max() are read independently, so a reader can observe
/// Value() > Max() transiently while UpdateMax's CAS is in flight; exporters
/// tolerate this (both reads are individually valid recent values).
class Gauge {
 public:
  void Set(int64_t value) {
    v_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }
  void Add(int64_t delta) {
    int64_t now = v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t candidate) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram: 64 log2 buckets at nanosecond resolution.
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
/// Recording is wait-free (one relaxed fetch_add per value plus min/max
/// maintenance); percentile extraction interpolates linearly inside the
/// winning bucket and clamps to the observed min/max, so a histogram holding
/// a single value reports that exact value at every percentile.
///
/// Ordering contract: Record() updates bucket, then count, then sum, then
/// min/max — all relaxed, so a concurrent Snap() can observe any prefix of
/// an in-flight Record. Snap() therefore reads the buckets first and derives
/// `count` from their sum, guaranteeing `count == sum(buckets)` in every
/// snapshot (the invariant cumulative-bucket consumers like the Prometheus
/// exporter need). `sum_ns`/`min_ns`/`max_ns` may lag the buckets by the
/// in-flight records; mean/percentiles are approximate under concurrency
/// and exact once writers quiesce.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value_ns) {
    buckets_[BucketIndex(value_ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value_ns, std::memory_order_relaxed);
    UpdateMin(value_ns);
    UpdateMax(value_ns);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumNs() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t MinNs() const {
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t MaxNs() const { return max_.load(std::memory_order_relaxed); }
  double MeanNs() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(SumNs()) / static_cast<double>(n);
  }

  /// Value at percentile `p` in [0, 100]. Approximate under concurrent
  /// recording (bucket counts are read individually), exact bucket-wise for a
  /// quiescent histogram.
  double PercentileNs(double p) const;

  static int BucketIndex(uint64_t value_ns) {
    if (value_ns == 0) return 0;
    int idx = 64 - __builtin_clzll(value_ns);  // bit_width
    return idx >= kBuckets ? kBuckets - 1 : idx;
  }
  /// Inclusive lower bound of bucket `i`.
  static uint64_t BucketLowerNs(int i) {
    return i == 0 ? 0 : 1ULL << (i - 1);
  }
  /// Exclusive upper bound of bucket `i`.
  static uint64_t BucketUpperNs(int i) {
    return i == 0 ? 1 : (i >= kBuckets - 1 ? UINT64_MAX : 1ULL << i);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Snapshot Snap() const;

 private:
  void UpdateMin(uint64_t v) {
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen && !min_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Append-only time series of (timestamp, value) samples — the export shape
/// for periodically-sampled gauges (queue depth over time, throughput over
/// time). Mutex-protected: appends happen at reporting cadence (hz, not
/// mhz), never on a verification hot path.
class Series {
 public:
  struct Point {
    uint64_t t_ns = 0;
    double value = 0;
  };

  void Append(uint64_t t_ns, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    points_.push_back(Point{t_ns, value});
  }
  std::vector<Point> Snap() const {
    std::lock_guard<std::mutex> lock(mu_);
    return points_;
  }
  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return points_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Point> points_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_METRICS_H_
