#ifndef LEOPARD_OBS_REGISTRY_H_
#define LEOPARD_OBS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace leopard {
namespace obs {

/// Owns every metric of one run. Deliberately global-free: components are
/// handed a registry pointer (or none, in which case they skip all
/// instrumentation) and cache the metric pointers they need, so the mutex is
/// only taken at registration/export time — never on a hot path.
///
/// Lookup is create-on-first-use: the same name always yields the same
/// object, letting independent components (pipeline + progress reporter,
/// say) share a metric by agreeing on its name. Names use dotted paths,
/// e.g. "verifier.cr.verify_ns"; see docs/OBSERVABILITY.md for the catalog.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned pointer is stable for the registry's lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);
  Series* series(std::string_view name);

  /// Sorted visitation for exporters. The registry lock is held during the
  /// sweep; callbacks must not register new metrics.
  void VisitCounters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void VisitGauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;
  void VisitSeries(
      const std::function<void(const std::string&, const Series&)>& fn) const;

 private:
  template <typename T>
  static T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>& table,
                        std::string_view name, std::mutex& mu) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(std::string(name));
    if (it == table.end()) {
      it = table.emplace(std::string(name), std::make_unique<T>()).first;
    }
    return it->second.get();
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_REGISTRY_H_
