#include "obs/events.h"

#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace leopard {
namespace obs {

const char* EventSeverityName(EventSeverity s) {
  switch (s) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

void CopyTruncated(char* dst, size_t dst_size, const char* src) {
  size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < dst_size; ++i) {
    dst[i] = src[i];
  }
  dst[i] = '\0';
}

}  // namespace

EventJournal::EventJournal(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      slots_(capacity_) {}

EventJournal::~EventJournal() = default;

void EventJournal::Record(EventSeverity severity, const char* component,
                          const char* message) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Mark the slot in-progress. Another writer lapping us (capacity_ events
  // recorded while we fill this slot) can interleave; the version check on
  // the reader side discards the torn result either way, so the journal
  // stays consistent even under that pathological contention.
  uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v | 1, std::memory_order_release);
  slot.seq = seq;
  slot.ts_ns = NowNs();
  slot.severity = severity;
  CopyTruncated(slot.component, sizeof(slot.component), component);
  CopyTruncated(slot.message, sizeof(slot.message), message);
  slot.version.store((v | 1) + 1, std::memory_order_release);
}

void EventJournal::Recordf(EventSeverity severity, const char* component,
                           const char* fmt, ...) {
  char buf[sizeof(Event{}.message)];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  Record(severity, component, buf);
}

std::vector<Event> EventJournal::Snapshot(size_t max_n) const {
  uint64_t end = next_seq_.load(std::memory_order_acquire);
  uint64_t window = max_n < capacity_ ? max_n : capacity_;
  uint64_t begin = end > window ? end - window : 0;
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // write in progress
    Event e;
    e.seq = slot.seq;
    e.ts_ns = slot.ts_ns;
    e.severity = slot.severity;
    std::memcpy(e.component, slot.component, sizeof(e.component));
    std::memcpy(e.message, slot.message, sizeof(e.message));
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t v2 = slot.version.load(std::memory_order_relaxed);
    if (v1 != v2) continue;  // torn: overwritten during the copy
    if (e.seq != seq) continue;  // slot already holds a newer generation
    e.component[sizeof(e.component) - 1] = '\0';
    e.message[sizeof(e.message) - 1] = '\0';
    out.push_back(e);
  }
  return out;
}

std::string EventJournal::ToJson(size_t max_n) const {
  std::vector<Event> events = Snapshot(max_n);
  std::string out = "[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"ts_ns\":" + std::to_string(e.ts_ns);
    out += ",\"severity\":\"";
    out += EventSeverityName(e.severity);
    out += "\",\"component\":\"" + JsonEscape(e.component);
    out += "\",\"message\":\"" + JsonEscape(e.message) + "\"}";
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------------------
// Fatal-signal dump. Everything below must stay async-signal-safe: write(2),
// open(2), close(2) only — no printf, no allocation, no locks.

namespace {

const EventJournal* g_fatal_journal = nullptr;
char g_fatal_path[256] = {0};
const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};

void WriteStr(int fd, const char* s) {
  size_t n = 0;
  while (s[n] != '\0') ++n;
  ssize_t ignored = write(fd, s, n);
  (void)ignored;
}

void WriteU64(int fd, uint64_t v) {
  char buf[21];
  int i = sizeof(buf);
  buf[--i] = '\0';
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteStr(fd, buf + i);
}

}  // namespace

// Not in the anonymous namespace: declared a friend so it can walk the ring
// directly without going through std::vector-allocating Snapshot().
void FatalDumpLocked(int fd, const EventJournal* j, bool json) {
  if (json) WriteStr(fd, "[");
  uint64_t end = j->next_seq_.load(std::memory_order_acquire);
  uint64_t begin = end > j->capacity_ ? end - j->capacity_ : 0;
  bool first = true;
  for (uint64_t seq = begin; seq < end; ++seq) {
    const EventJournal::Slot& slot = j->slots_[seq & j->mask_];
    if (slot.version.load(std::memory_order_acquire) & 1) continue;
    if (slot.seq != seq) continue;
    if (json) {
      if (!first) WriteStr(fd, ",");
      WriteStr(fd, "{\"seq\":");
      WriteU64(fd, slot.seq);
      WriteStr(fd, ",\"ts_ns\":");
      WriteU64(fd, slot.ts_ns);
      WriteStr(fd, ",\"severity\":\"");
      WriteStr(fd, EventSeverityName(slot.severity));
      WriteStr(fd, "\",\"component\":\"");
      WriteStr(fd, slot.component);  // components/messages are internal
      WriteStr(fd, "\",\"message\":\"");
      WriteStr(fd, slot.message);  // strings; no quotes to escape
      WriteStr(fd, "\"}");
    } else {
      WriteStr(fd, "[event ");
      WriteU64(fd, slot.seq);
      WriteStr(fd, "] ");
      WriteStr(fd, EventSeverityName(slot.severity));
      WriteStr(fd, " ");
      WriteStr(fd, slot.component);
      WriteStr(fd, ": ");
      WriteStr(fd, slot.message);
      WriteStr(fd, "\n");
    }
    first = false;
  }
  if (json) WriteStr(fd, "]\n");
}

namespace {

void FatalSignalHandler(int signo) {
  if (g_fatal_journal != nullptr) {
    WriteStr(2, "\n[leopard] fatal signal ");
    WriteU64(2, static_cast<uint64_t>(signo));
    WriteStr(2, "; event journal (oldest first):\n");
    FatalDumpLocked(2, g_fatal_journal, /*json=*/false);
    if (g_fatal_path[0] != '\0') {
      int fd = open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        FatalDumpLocked(fd, g_fatal_journal, /*json=*/true);
        close(fd);
      }
    }
  }
  std::signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

void EventJournal::InstallFatalDump(const EventJournal* journal,
                                    const std::string& path) {
  g_fatal_journal = journal;
  size_t n = path.size() < sizeof(g_fatal_path) - 1 ? path.size()
                                                    : sizeof(g_fatal_path) - 1;
  std::memcpy(g_fatal_path, path.data(), n);
  g_fatal_path[n] = '\0';
  for (int signo : kFatalSignals) {
    std::signal(signo, journal == nullptr ? SIG_DFL : FatalSignalHandler);
  }
}

}  // namespace obs
}  // namespace leopard
