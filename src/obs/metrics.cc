#include "obs/metrics.h"

#include <algorithm>

namespace leopard {
namespace obs {

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  // Read the buckets FIRST and derive the count from their sum. Record()
  // increments the bucket before the count, so a snapshot that read count_
  // directly could observe count < sum(buckets) under concurrent writers —
  // which would make the Prometheus `+Inf` bucket (== count) fall below the
  // last finite cumulative bucket, violating histogram monotonicity.
  // Deriving count from the buckets keeps `count == sum(buckets)` an
  // invariant of every snapshot, torn or not.
  s.sum_ns = SumNs();
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.min_ns = MinNs();
  s.max_ns = MaxNs();
  return s;
}

double Histogram::PercentileNs(double p) const {
  Snapshot s = Snap();
  if (s.count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based: percentile p covers the first
  // ceil(p/100 * count) observations in sorted order.
  double target = p / 100.0 * static_cast<double>(s.count);
  uint64_t rank = static_cast<uint64_t>(target);
  if (static_cast<double>(rank) < target || rank == 0) ++rank;

  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (s.buckets[i] == 0) continue;
    uint64_t next = cumulative + s.buckets[i];
    if (rank <= next) {
      // Interpolate the rank's position inside this bucket's range.
      double lower = static_cast<double>(BucketLowerNs(i));
      double upper = i >= kBuckets - 1
                         ? static_cast<double>(s.max_ns)
                         : static_cast<double>(BucketUpperNs(i));
      double frac = static_cast<double>(rank - cumulative) /
                    static_cast<double>(s.buckets[i]);
      double v = lower + frac * (upper - lower);
      // The observed extremes bound every percentile tighter than the
      // bucket edges do.
      v = std::max(v, static_cast<double>(s.min_ns));
      v = std::min(v, static_cast<double>(s.max_ns));
      return v;
    }
    cumulative = next;
  }
  return static_cast<double>(s.max_ns);
}

}  // namespace obs
}  // namespace leopard
