#ifndef LEOPARD_OBS_HTTP_ENDPOINT_H_
#define LEOPARD_OBS_HTTP_ENDPOINT_H_

// Minimal HTTP/1.1 introspection endpoint (DESIGN: live introspection).
//
// Serves three read-only routes from a dedicated acceptor thread:
//
//   GET /metrics   Prometheus text exposition of the whole registry
//   GET /healthz   200 "ok" when every watchdog heartbeat is fresh,
//                  503 listing the stalled threads otherwise
//   GET /statusz   JSON operational snapshot: uptime, build info, watchdog
//                  state, plus service-specific fields supplied by the
//                  embedding binary; `?events=N` appends the last N journal
//                  events
//
// This is deliberately not a general HTTP server: requests are handled
// serially on the acceptor thread (a scrape every few seconds, not a
// traffic tier), bodies are ignored, and only GET is implemented. It reuses
// net::Socket/Listener and depends on nothing else from src/net, so the obs
// layer stays below the wire-protocol stack in the build graph.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"

namespace leopard {
namespace obs {

class EventJournal;
class MetricsRegistry;
class Watchdog;

class HttpEndpoint {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
    const MetricsRegistry* registry = nullptr;  // required for /metrics
    const EventJournal* events = nullptr;       // /statusz?events=N
    const Watchdog* watchdog = nullptr;         // /healthz degradation
    /// Extra JSON fields for /statusz, rendered inside the top-level object
    /// (e.g. `"sessions":3,"shards":[...]`). Called per request from the
    /// acceptor thread; must be thread-safe and fast.
    std::function<std::string()> statusz_fields;
    std::string build_info;  // e.g. "leopard_serve dev"
    uint64_t accept_timeout_ms = 200;
    uint64_t max_request_bytes = 8192;
  };

  explicit HttpEndpoint(const Options& opts);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds and starts the acceptor thread.
  Status Start();
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  /// Stops the acceptor and closes the listener. Idempotent.
  void Stop();

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Builds the response body for `path` (with optional query string) —
  /// the routing core, exposed so tests can exercise routes without a
  /// socket. Returns the HTTP status code; fills body + content type.
  int HandleRoute(const std::string& path_and_query, std::string& body,
                  std::string& content_type) const;

 private:
  void AcceptLoop();
  void ServeConnection(net::Socket sock);

  std::string MetricsBody() const;
  std::string HealthzBody(int& code) const;
  std::string StatuszBody(const std::string& query) const;

  Options opts_;
  net::Listener listener_;
  uint16_t port_ = 0;
  uint64_t start_ns_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_HTTP_ENDPOINT_H_
