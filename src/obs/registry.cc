#include "obs/registry.h"

namespace leopard {
namespace obs {

Counter* MetricsRegistry::counter(std::string_view name) {
  return GetOrCreate(counters_, name, mu_);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return GetOrCreate(gauges_, name, mu_);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return GetOrCreate(histograms_, name, mu_);
}

Series* MetricsRegistry::series(std::string_view name) {
  return GetOrCreate(series_, name, mu_);
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : counters_) fn(name, *m);
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : gauges_) fn(name, *m);
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : histograms_) fn(name, *m);
}

void MetricsRegistry::VisitSeries(
    const std::function<void(const std::string&, const Series&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : series_) fn(name, *m);
}

}  // namespace obs
}  // namespace leopard
