#ifndef LEOPARD_OBS_PROGRESS_H_
#define LEOPARD_OBS_PROGRESS_H_

#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace leopard {
namespace obs {

/// What the live verifier looks like right now. Produced by a caller-supplied
/// sampler at each reporting tick; every field must be safe to read
/// concurrently with the verifier thread (atomics or registry metrics).
struct ProgressSnapshot {
  uint64_t verified = 0;     ///< traces verified so far
  int64_t queue_depth = 0;   ///< traces buffered in the pipeline
  uint64_t deps_total = 0;   ///< dependencies examined
  uint64_t overlapped = 0;   ///< interval-overlapped dependencies (β num.)
  uint64_t uncertain = 0;    ///< still-uncertain dependencies
  uint64_t violations = 0;   ///< total violations across mechanisms
};

/// Builds a snapshot from the standard metric names every instrumented
/// verifier maintains — "pipeline.queue_depth" plus the "verifier.*"
/// counters mirrored by Leopard::SyncStatsToMetrics(). All reads are
/// atomic; safe to call from any thread while verification runs.
ProgressSnapshot SnapshotFromRegistry(MetricsRegistry& registry);

/// Background progress reporter for online verification: every
/// `interval_ms` it pulls a ProgressSnapshot, derives throughput from the
/// verified-count delta, appends the sample to `progress.*` series in the
/// registry (when one is attached), and optionally prints a one-line status
/// to `out`. Stop() (idempotent, also run by the destructor) takes one final
/// sample so even sub-interval runs export at least one point.
class ProgressReporter {
 public:
  struct Options {
    uint64_t interval_ms = 1000;
    bool print = true;
    std::FILE* out = stderr;                 ///< not owned
    MetricsRegistry* registry = nullptr;     ///< not owned; may be null
    std::string series_prefix = "progress";
  };

  ProgressReporter(Options options,
                   std::function<ProgressSnapshot()> sampler);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  void Stop();

  uint64_t ticks() const { return ticks_.Value(); }

 private:
  void Loop();
  void Tick();

  Options options_;
  std::function<ProgressSnapshot()> sampler_;
  Counter ticks_;
  uint64_t last_verified_ = 0;
  uint64_t last_tick_ns_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace leopard

#endif  // LEOPARD_OBS_PROGRESS_H_
