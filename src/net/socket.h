#ifndef LEOPARD_NET_SOCKET_H_
#define LEOPARD_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace leopard {
namespace net {

/// Thin RAII wrapper over a connected POSIX TCP socket. Move-only; the
/// destructor closes the descriptor. Error handling follows the library
/// convention: no exceptions, every fallible call returns Status.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends all `n` bytes, retrying short writes and EINTR. SIGPIPE is
  /// suppressed; a peer reset surfaces as a Status instead.
  Status SendAll(const void* data, size_t n);

  /// Receives up to `n` bytes. Returns the byte count (0 = orderly EOF);
  /// kBusy when a receive timeout configured via SetRecvTimeoutMs expires
  /// with no data.
  StatusOr<size_t> Recv(void* buf, size_t n);

  /// Non-blocking receive: kBusy when no data is currently available.
  StatusOr<size_t> RecvNonblocking(void* buf, size_t n);

  Status SetRecvTimeoutMs(uint64_t ms);
  Status SetSendTimeoutMs(uint64_t ms);

  /// shutdown(2) both directions — unblocks a thread parked in Recv on
  /// this socket from another thread. Safe on an already-dead socket.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// Splits "host:port". Returns false on a missing/invalid port.
bool ParseHostPort(const std::string& spec, std::string& host, uint16_t& port);

/// Connects to host:port (numeric IP or name). Blocking.
StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port);

/// A listening TCP socket. Accept() blocks at most `accept_timeout_ms`, so
/// an accept loop can poll a stop flag without extra machinery.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) noexcept;
  ~Listener();

  /// Binds and listens on `port` (0 = kernel-assigned ephemeral port, read
  /// it back via port()). Listens on all interfaces.
  static StatusOr<Listener> Listen(uint16_t port, int backlog = 16);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Accepts one connection; kBusy on timeout (no pending connection).
  StatusOr<Socket> Accept(uint64_t accept_timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace leopard

#endif  // LEOPARD_NET_SOCKET_H_
