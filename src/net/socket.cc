#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace leopard {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetTimeout(int fd, int which, uint64_t ms) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::Ok();
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(const void* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Busy("send timeout");
      }
      return Errno("send");
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::Ok();
}

StatusOr<size_t> Socket::Recv(void* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed socket");
  while (true) {
    ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("recv timeout");
    }
    return Errno("recv");
  }
}

StatusOr<size_t> Socket::RecvNonblocking(void* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed socket");
  while (true) {
    ssize_t got = ::recv(fd_, buf, n, MSG_DONTWAIT);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("no data");
    }
    return Errno("recv");
  }
}

Status Socket::SetRecvTimeoutMs(uint64_t ms) {
  return SetTimeout(fd_, SO_RCVTIMEO, ms);
}

Status Socket::SetSendTimeoutMs(uint64_t ms) {
  return SetTimeout(fd_, SO_SNDTIMEO, ms);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ParseHostPort(const std::string& spec, std::string& host,
                   uint16_t& port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  char* end = nullptr;
  unsigned long p = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p == 0 || p > 65535) return false;
  host = spec.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  port = static_cast<uint16_t>(p);
  return true;
}

StatusOr<Socket> TcpConnect(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + host + ": " +
                                   gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Listener::~Listener() { Close(); }

StatusOr<Listener> Listener::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

StatusOr<Socket> Listener::Accept(uint64_t accept_timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed listener");
  Status s = SetTimeout(fd_, SO_RCVTIMEO, accept_timeout_ms);
  if (!s.ok()) return s;
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Busy("accept timeout");
    }
    return Errno("accept");
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace leopard
