#include "net/client.h"

#include <utility>

#include "obs/metrics.h"

namespace leopard {
namespace net {

namespace {
constexpr size_t kRecvChunk = 64 * 1024;
}  // namespace

StatusOr<std::unique_ptr<VerifierClient>> VerifierClient::Connect(
    const std::string& host_port, const Options& options) {
  if (options.n_streams == 0) {
    return Status::InvalidArgument("n_streams must be >= 1");
  }
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(host_port, host, port)) {
    return Status::InvalidArgument("bad host:port spec '" + host_port + "'");
  }
  auto sock = TcpConnect(host, port);
  if (!sock.ok()) return sock.status();
  std::unique_ptr<VerifierClient> client(
      new VerifierClient(std::move(*sock), options));

  if (options.stream_ils.size() > options.n_streams) {
    return Status::InvalidArgument("stream_ils longer than n_streams");
  }
  if (!options.stream_ils.empty() && options.wire_version < 4) {
    return Status::InvalidArgument(
        "per-stream isolation levels need wire version >= 4");
  }
  if ((options.resumable || options.resume) && options.wire_version < 5) {
    return Status::InvalidArgument("session resume needs wire version >= 5");
  }
  HelloMsg hello;
  hello.version = options.wire_version;
  hello.n_streams = options.n_streams;
  // Declaring per-stream isolation levels makes the HELLO carry the v4
  // tail, which only a v4 server accepts (wire.h); an older server drops
  // the session with kError and Connect surfaces that status.
  hello.stream_ils = options.stream_ils;
  // Resume flags add the v5 tail, which likewise requires a v5 server.
  hello.resumable = options.resumable;
  hello.has_resume = options.resume;
  hello.resume_base = options.resume ? options.resume_base : 0;
  const std::string frame = EncodeFrame(FrameType::kHello, EncodeHello(hello));
  Status s = client->sock_.SendAll(frame.data(), frame.size());
  if (!s.ok()) return s;
  Frame ack;
  s = client->WaitFor(FrameType::kHelloAck, ack);
  if (!s.ok()) return s;
  auto msg = DecodeHelloAck(ack.payload);
  if (!msg.ok()) return msg.status();
  // The server acks the negotiated version: ours, or lower when it is an
  // older build (its violation payloads are then v1, which DecodeViolation
  // accepts transparently).
  if (msg->version < kMinWireVersion || msg->version > options.wire_version) {
    return Status::InvalidArgument("server speaks wire version " +
                                   std::to_string(msg->version));
  }
  client->version_ = msg->version;
  client->base_client_ = msg->base_client;
  // A successful resume keeps the requested base id and reports per-stream
  // floors; a fallback allocation gets a fresh (different) base.
  client->resumed_ = options.resume && msg->base_client == options.resume_base;
  client->resume_floors_ = std::move(msg->resume_floors);
  return client;
}

VerifierClient::VerifierClient(Socket sock, const Options& options)
    : sock_(std::move(sock)),
      opts_(options),
      pending_(options.n_streams),
      stream_closed_(options.n_streams, 0) {
  sock_.SetRecvTimeoutMs(opts_.recv_timeout_ms);
  if (opts_.metrics != nullptr) {
    m_batches_out_ = opts_.metrics->counter("net.client.batches_out");
    m_traces_out_ = opts_.metrics->counter("net.client.traces_out");
    m_bytes_out_ = opts_.metrics->counter("net.client.bytes_out");
    m_violations_in_ = opts_.metrics->counter("net.client.violations_received");
  }
}

VerifierClient::~VerifierClient() { sock_.Close(); }

Status VerifierClient::Push(uint32_t stream, Trace trace) {
  if (stream >= pending_.size()) {
    return Status::InvalidArgument("no such stream");
  }
  if (stream_closed_[stream]) {
    return Status::FailedPrecondition("push on closed stream");
  }
  if (dead_) {
    return Status::FailedPrecondition("session dead: " + server_error_);
  }
  pending_[stream].push_back(std::move(trace));
  if (pending_[stream].size() >= opts_.batch_traces) {
    return SendBatch(stream);
  }
  return Status::Ok();
}

Status VerifierClient::Flush(uint32_t stream) {
  if (stream >= pending_.size()) {
    return Status::InvalidArgument("no such stream");
  }
  if (pending_[stream].empty()) return Status::Ok();
  return SendBatch(stream);
}

Status VerifierClient::SendBatch(uint32_t stream) {
  if (dead_) {
    return Status::FailedPrecondition("session dead: " + server_error_);
  }
  // v3 sessions stamp the batch with the push-time steady clock so the
  // server can attribute wire + queueing latency to the ingest stage.
  const uint64_t ingest_ns = version_ >= 3 ? obs::NowNs() : 0;
  if (version_ < 4) {
    // Pre-v4 decoders reject the isolation flag bit on the op byte, so a
    // down-negotiated session ships every record untagged (SERIALIZABLE) —
    // the strongest level, which never suppresses a violation.
    for (Trace& t : pending_[stream]) t.il = IsolationLevel::kSerializable;
  }
  std::string frame = EncodeFrame(
      FrameType::kBatch, EncodeBatch(stream, pending_[stream], ingest_ns));
  const size_t n = pending_[stream].size();
  pending_[stream].clear();
  Status s = sock_.SendAll(frame.data(), frame.size());
  if (!s.ok()) {
    dead_ = true;
    return s;
  }
  if (m_batches_out_ != nullptr) m_batches_out_->Inc();
  if (m_traces_out_ != nullptr) m_traces_out_->Inc(n);
  if (m_bytes_out_ != nullptr) m_bytes_out_->Inc(frame.size());
  // Keep the pipe two-way: pick up acks and violations the server already
  // sent so neither side ever blocks on a full send buffer.
  return DrainNonblocking();
}

Status VerifierClient::CloseStream(uint32_t stream) {
  if (stream >= pending_.size()) {
    return Status::InvalidArgument("no such stream");
  }
  if (stream_closed_[stream]) return Status::Ok();
  Status s = Flush(stream);
  if (!s.ok()) return s;
  stream_closed_[stream] = 1;
  std::string frame = EncodeFrame(FrameType::kCloseStream,
                                  EncodeCloseStream(CloseStreamMsg{stream}));
  s = sock_.SendAll(frame.data(), frame.size());
  if (!s.ok()) dead_ = true;
  return s;
}

StatusOr<ByeMsg> VerifierClient::Finish() {
  for (uint32_t i = 0; i < pending_.size(); ++i) {
    Status s = CloseStream(i);
    if (!s.ok()) return s;
  }
  Frame bye;
  Status s = WaitFor(FrameType::kBye, bye);
  if (!s.ok()) return s;
  return bye_;
}

Status VerifierClient::WaitForAcked(uint64_t min_acked) {
  while (acked_traces_ < min_acked) {
    if (dead_) {
      return Status::FailedPrecondition("session dead: " + server_error_);
    }
    Frame frame;
    Status s = WaitFor(FrameType::kBatchAck, frame);
    if (!s.ok()) return s;
    s = Consume(std::move(frame));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status VerifierClient::Consume(Frame frame) {
  switch (frame.type) {
    case FrameType::kBatchAck: {
      auto msg = DecodeBatchAck(frame.payload);
      if (!msg.ok()) return msg.status();
      acked_traces_ = msg->traces_received;
      return Status::Ok();
    }
    case FrameType::kViolation: {
      auto msg = DecodeViolation(frame.payload);
      if (!msg.ok()) return msg.status();
      violations_.push_back(std::move(msg->bug));
      if (m_violations_in_ != nullptr) m_violations_in_->Inc();
      return Status::Ok();
    }
    case FrameType::kBye: {
      auto msg = DecodeBye(frame.payload);
      if (!msg.ok()) return msg.status();
      bye_ = *msg;
      got_bye_ = true;
      return Status::Ok();
    }
    case FrameType::kError: {
      auto msg = DecodeError(frame.payload);
      server_error_ = msg.ok() ? *msg : "unreadable server error";
      dead_ = true;
      return Status::Internal("server error: " + server_error_);
    }
    default:
      dead_ = true;
      return Status::InvalidArgument(std::string("unexpected frame ") +
                                     FrameTypeName(frame.type));
  }
}

Status VerifierClient::DrainNonblocking() {
  char buf[kRecvChunk];
  while (true) {
    Frame frame;
    Status s = decoder_.Poll(frame);
    if (s.ok()) {
      s = Consume(std::move(frame));
      if (!s.ok()) return s;
      continue;
    }
    if (s.code() != StatusCode::kBusy) {
      dead_ = true;
      return s;  // poisoned decoder
    }
    auto got = sock_.RecvNonblocking(buf, sizeof(buf));
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kBusy) return Status::Ok();
      dead_ = true;
      return got.status();
    }
    if (*got == 0) {
      dead_ = true;
      return Status::Ok();  // EOF: a pending error/bye was already consumed
    }
    decoder_.Feed(buf, *got);
  }
}

Status VerifierClient::WaitFor(FrameType want, Frame& out) {
  char buf[kRecvChunk];
  while (true) {
    Frame frame;
    Status s = decoder_.Poll(frame);
    if (s.ok()) {
      if (frame.type == want) {
        // kBye must still be recorded (Finish returns bye_).
        if (want == FrameType::kBye) {
          Status cs = Consume(frame);
          if (!cs.ok()) return cs;
        }
        out = std::move(frame);
        return Status::Ok();
      }
      s = Consume(std::move(frame));
      if (!s.ok()) return s;
      continue;
    }
    if (s.code() != StatusCode::kBusy) {
      dead_ = true;
      return s;
    }
    auto got = sock_.Recv(buf, sizeof(buf));
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kBusy) {
        dead_ = true;
        return Status::Busy("timed out waiting for " +
                            std::string(FrameTypeName(want)));
      }
      dead_ = true;
      return got.status();
    }
    if (*got == 0) {
      dead_ = true;
      return Status::Internal("connection closed waiting for " +
                              std::string(FrameTypeName(want)));
    }
    decoder_.Feed(buf, *got);
  }
}

}  // namespace net
}  // namespace leopard
