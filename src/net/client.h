#ifndef LEOPARD_NET_CLIENT_H_
#define LEOPARD_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "trace/trace.h"
#include "verifier/bug.h"

namespace leopard {
namespace net {

/// Client side of the wire protocol (wire.h): connects to a VerifierServer,
/// multiplexes one or more logical client streams over the connection, and
/// collects violation reports the server streams back.
///
/// Usage:
///     auto client = VerifierClient::Connect("127.0.0.1:7411", opts);
///     client->Push(stream, trace);   // buffered, auto-flushed per batch
///     ...
///     auto bye = client->Finish();   // closes streams, drains the report
///     for (const BugDescriptor& bug : client->violations()) ...
///
/// Not thread-safe: one thread drives a VerifierClient. Multi-stream
/// pushing from a single thread is the supported way to replay several
/// per-client trace files over one connection — interleave pushes in
/// global ts_bef order so the server-side merge never stalls on an idle
/// stream's watermark.
///
/// Deadlock note: after every batch the client opportunistically drains
/// whatever the server sent (acks, violations) without blocking, so the
/// server's write side never fills up while both ends are sending.
class VerifierClient {
 public:
  struct Options {
    /// Logical client streams multiplexed over this connection.
    uint32_t n_streams = 1;
    /// Auto-flush threshold: a stream's buffered traces are sent once this
    /// many accumulate. Flush()/CloseStream() send regardless.
    size_t batch_traces = 256;
    /// Timeout for blocking waits (HELLO_ACK, the BYE drain in Finish()).
    uint64_t recv_timeout_ms = 30000;
    /// Optional instrumentation: net.client.* counters.
    obs::MetricsRegistry* metrics = nullptr;
    /// Version declared in the HELLO — lets tests and cautious deployments
    /// pin an older protocol; the server negotiates down to min(ours,
    /// theirs). Batches carry the v3 ingest timestamp only when the
    /// negotiated version is >= 3.
    uint32_t wire_version = kWireVersion;
    /// v4 mixed-isolation extension: declared isolation level per stream,
    /// indexed by stream id (must not be longer than n_streams; missing
    /// tail entries default to SERIALIZABLE). Non-empty makes the HELLO
    /// carry the isolation tail, which a pre-v4 server rejects — declaring
    /// per-stream levels therefore *requires* a v4 server (Connect fails
    /// cleanly otherwise). Leave empty for version-agnostic sessions.
    std::vector<IsolationLevel> stream_ils;
    /// v5 session-resume extension. `resumable` asks the server to park
    /// this session's per-stream floors if the connection drops before all
    /// streams closed cleanly, so a later connection can resume them.
    /// `resume` + `resume_base` re-attach to such a parked session: on
    /// success the server assigns the same base client id (check
    /// resumed()); when nothing is parked under resume_base it falls back
    /// to a fresh allocation. Either flag requires a v5 server.
    bool resumable = false;
    bool resume = false;
    uint32_t resume_base = 0;
  };

  /// Connects and performs the handshake. `host_port` is "host:port";
  /// an empty host means 127.0.0.1.
  static StatusOr<std::unique_ptr<VerifierClient>> Connect(
      const std::string& host_port, const Options& options);

  ~VerifierClient();
  VerifierClient(const VerifierClient&) = delete;
  VerifierClient& operator=(const VerifierClient&) = delete;

  /// Buffers one trace for `stream`; sends a kBatch once the buffer reaches
  /// batch_traces. ts_bef must be non-decreasing per stream.
  Status Push(uint32_t stream, Trace trace);

  /// Sends `stream`'s buffered traces now (no-op when empty).
  Status Flush(uint32_t stream);

  /// Flushes and closes one stream. Idempotent.
  Status CloseStream(uint32_t stream);

  /// Closes any remaining streams and blocks until the server's kBye (the
  /// server sends it only after the verification run drained, so every
  /// violation involving this session has arrived by then).
  StatusOr<ByeMsg> Finish();

  /// Violations the server attributed to this session, in arrival order.
  const std::vector<BugDescriptor>& violations() const { return violations_; }

  /// Traces the server has acknowledged (from the latest kBatchAck).
  uint64_t acked_traces() const { return acked_traces_; }

  /// Blocks until the server has acknowledged at least `min_acked` traces
  /// from this session (consuming violations on the way). A client that
  /// intends to drop the connection and resume later calls this first, so
  /// no sent-but-unacked batch can be lost to an abrupt close.
  Status WaitForAcked(uint64_t min_acked);

  /// True when Connect() re-attached to the parked session requested via
  /// Options::resume — the session kept its old base client id and
  /// resume_floors() holds the per-stream push floors.
  bool resumed() const { return resumed_; }

  /// Per-stream re-admission floors of a resumed session (empty otherwise):
  /// stream s may only push traces with ts_bef >= resume_floors()[s].
  const std::vector<Timestamp>& resume_floors() const { return resume_floors_; }

  /// First verifier client id of this session (stream s = base + s).
  uint32_t base_client() const { return base_client_; }

  /// Wire version negotiated with the server (see wire.h). Violations from
  /// a v2 session carry the structured witness (ops + edges).
  uint32_t wire_version() const { return version_; }

  /// The server's kError message, when the session died on one.
  const std::string& server_error() const { return server_error_; }

 private:
  VerifierClient(Socket sock, const Options& options);

  Status SendBatch(uint32_t stream);
  /// Processes one received frame (ack / violation / error / bye).
  Status Consume(Frame frame);
  /// Drains everything already queued by the kernel, without blocking.
  Status DrainNonblocking();
  /// Blocks until `want` arrives (consuming everything else on the way).
  Status WaitFor(FrameType want, Frame& out);

  Socket sock_;
  Options opts_;
  FrameDecoder decoder_;
  uint32_t base_client_ = 0;
  uint32_t version_ = kWireVersion;  // negotiated in Connect()
  std::vector<std::vector<Trace>> pending_;    // per stream
  std::vector<uint8_t> stream_closed_;
  std::vector<BugDescriptor> violations_;
  uint64_t acked_traces_ = 0;
  bool resumed_ = false;
  std::vector<Timestamp> resume_floors_;
  bool got_bye_ = false;
  ByeMsg bye_;
  std::string server_error_;
  bool dead_ = false;  // connection unusable (error seen or peer gone)

  obs::Counter* m_batches_out_ = nullptr;
  obs::Counter* m_traces_out_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_violations_in_ = nullptr;
};

}  // namespace net
}  // namespace leopard

#endif  // LEOPARD_NET_CLIENT_H_
