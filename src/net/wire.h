#ifndef LEOPARD_NET_WIRE_H_
#define LEOPARD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"
#include "verifier/bug.h"

namespace leopard {
namespace net {

/// Versioned, length-prefixed binary wire protocol for shipping client-side
/// traces to a remote VerifierServer and streaming violation reports back
/// (DESIGN.md §8).
///
/// Every frame is
///     u32 payload_len | u8 type | payload[payload_len]
/// little-endian, like the trace file format whose record layout the kBatch
/// payload reuses verbatim (trace_io::AppendTraceRecord).
///
/// Session lifecycle: the client opens with kHello declaring the protocol
/// version and how many logical client streams it multiplexes over this
/// connection; the server answers kHelloAck with the base stream id it
/// assigned. kBatch frames then carry traces for one stream each and are
/// acknowledged with kBatchAck; kCloseStream ends one stream. Violations
/// stream back as kViolation frames at any point after the offending
/// traces; kBye terminates the session after the server drained. kError
/// (either direction) reports a protocol failure, after which the sender
/// closes the connection.

/// Current protocol version. v2 extends the kViolation payload with the
/// structured witness (anchor timestamp, ops with `[ts_bef, ts_aft]`
/// endpoints, dependency edges); v3 extends the kBatch payload with an
/// optional trailing 8-byte client ingest timestamp (steady-clock ns at
/// client push) used for end-to-end stage-latency attribution; v4 adds the
/// mixed-isolation extension: kHello may carry an optional per-stream
/// isolation-level tail, and kBatch trace records may use the trace_io
/// isolation flag bit. The tails are self-describing (presence detected
/// from the payload length), and the version is negotiated down per
/// session: a v1 client still gets v1 violation frames from a v4 server,
/// and a v4 client never sends the ingest tail to a v1/v2 server. The one
/// asymmetry: a pre-v4 server rejects a kHello carrying the isolation tail
/// (its decoder requires the payload to end after n_streams), so a client
/// only emits the tail when the caller actually declared per-stream levels
/// — such a session *requires* a v4 server and fails cleanly otherwise.
/// When the ack negotiates the session below v4 the client strips record
/// isolation tags (re-encodes as SERIALIZABLE), because pre-v4 decoders
/// reject flagged op bytes. v5 adds the session-resume extension: kHello
/// may carry a fixed 5-byte tail (u8 flags, u32 resume_base) after the
/// isolation tail — flag bit 0 declares the session *resumable* (the
/// server parks its per-stream floors on an abrupt disconnect instead of
/// retiring the ids), flag bit 1 asks to *resume* the parked session whose
/// base client id is resume_base. When a resume succeeds, kHelloAck echoes
/// resume_base as base_client and appends its own self-describing tail
/// (u32 count, count x u64): the per-stream push floors the resumed
/// streams must respect. Like the v4 tail, the v5 tail makes the HELLO
/// unacceptable to older servers, so clients only emit it when the caller
/// opted into resumability — such a session requires a v5 server.
constexpr uint32_t kWireVersion = 5;
/// Oldest version this build still speaks.
constexpr uint32_t kMinWireVersion = 1;
constexpr size_t kFrameHeaderBytes = 5;  // u32 payload length + u8 type
/// Upper bound on one frame's payload; a header declaring more poisons the
/// decoder (malformed or hostile stream).
constexpr size_t kMaxFramePayload = 16u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kBatch = 3,
  kBatchAck = 4,
  kCloseStream = 5,
  kViolation = 6,
  kBye = 7,
  kError = 8,
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes a complete frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame decoder: feed arbitrary byte chunks as they arrive
/// from a socket, poll complete frames out. Tolerates frames split across
/// any number of reads (partial-frame handling); a structurally invalid
/// header (oversized length, unknown type) permanently poisons the decoder
/// — framing can not be resynchronized on a corrupt byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n);

  /// kOk: `out` holds the next frame. kBusy: need more bytes.
  /// kInvalidArgument: the stream is corrupt (decoder poisoned).
  Status Poll(Frame& out);

  size_t buffered_bytes() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
  bool poisoned_ = false;
};

// --- Typed payloads -------------------------------------------------------

struct HelloMsg {
  uint32_t version = kWireVersion;
  uint32_t n_streams = 1;
  /// v4 mixed-isolation tail: declared isolation level per stream, indexed
  /// by stream id (entries beyond n_streams are rejected; streams past the
  /// end of the list default to SERIALIZABLE). Empty = no tail emitted —
  /// the only shape a pre-v4 server accepts.
  std::vector<IsolationLevel> stream_ils;
  /// v5 resume tail. `resumable` asks the server to park this session's
  /// stream state (per-client floors) if the connection drops before every
  /// stream closed cleanly. `has_resume` asks to re-attach to the parked
  /// session whose base client id is `resume_base`; when no such parked
  /// session exists the server falls back to a fresh allocation (detected
  /// by the ack's base_client differing from resume_base). Setting either
  /// flag emits the tail — which requires a v5 server.
  bool resumable = false;
  bool has_resume = false;
  uint32_t resume_base = 0;
};

struct HelloAckMsg {
  uint32_t version = kWireVersion;
  /// First verifier client id assigned to this session; the session's
  /// stream `s` maps to verifier client `base_client + s`.
  uint32_t base_client = 0;
  /// v5: on a successful resume, one entry per stream — the oldest ts_bef
  /// the resumed stream may still push (its re-admission floor). Empty on
  /// fresh sessions.
  std::vector<Timestamp> resume_floors;
};

struct BatchMsg {
  uint32_t stream = 0;
  std::vector<Trace> traces;
  /// v3: steady-clock ns on the client at the moment the batch was pushed
  /// onto the wire; 0 when absent (v1/v2 peer). Comparable with the
  /// server's obs::NowNs() only when both ends share a machine (loopback) —
  /// consumers must treat negative deltas as clock skew and skip them.
  uint64_t ingest_ns = 0;
};

struct BatchAckMsg {
  /// Total traces the server has accepted from this session so far.
  uint64_t traces_received = 0;
};

struct CloseStreamMsg {
  uint32_t stream = 0;
};

struct ViolationMsg {
  BugDescriptor bug;
};

struct ByeMsg {
  uint64_t traces_verified = 0;
  uint32_t violations_sent = 0;
};

std::string EncodeHello(const HelloMsg& m);
StatusOr<HelloMsg> DecodeHello(const std::string& payload);

std::string EncodeHelloAck(const HelloAckMsg& m);
StatusOr<HelloAckMsg> DecodeHelloAck(const std::string& payload);

/// `ingest_ns != 0` appends the v3 ingest-timestamp tail; callers must only
/// pass it on sessions that negotiated version >= 3.
std::string EncodeBatch(uint32_t stream, const std::vector<Trace>& traces,
                        uint64_t ingest_ns = 0);
StatusOr<BatchMsg> DecodeBatch(const std::string& payload);

std::string EncodeBatchAck(const BatchAckMsg& m);
StatusOr<BatchAckMsg> DecodeBatchAck(const std::string& payload);

std::string EncodeCloseStream(const CloseStreamMsg& m);
StatusOr<CloseStreamMsg> DecodeCloseStream(const std::string& payload);

/// `version` selects the payload layout: 1 = legacy (type/key/txns/detail),
/// 2 = legacy + structured witness extension. The decoder accepts both (the
/// extension's presence is self-describing).
std::string EncodeViolation(const BugDescriptor& bug,
                            uint32_t version = kWireVersion);
StatusOr<ViolationMsg> DecodeViolation(const std::string& payload);

std::string EncodeBye(const ByeMsg& m);
StatusOr<ByeMsg> DecodeBye(const std::string& payload);

std::string EncodeError(std::string_view message);
StatusOr<std::string> DecodeError(const std::string& payload);

}  // namespace net
}  // namespace leopard

#endif  // LEOPARD_NET_WIRE_H_
