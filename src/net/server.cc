#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/state_codec.h"
#include "diagnose/report.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "verifier/state_serde.h"

namespace leopard {
namespace net {

namespace {
constexpr uint64_t kPollMs = 200;      // recv/accept poll quantum
constexpr uint64_t kSendTimeoutMs = 5000;
constexpr size_t kRecvChunk = 64 * 1024;
}  // namespace

VerifierServer::VerifierServer(const VerifierConfig& config,
                               const Options& options)
    : config_(config), opts_(options), metrics_(options.metrics) {
  if (metrics_ != nullptr) {
    m_connections_ = metrics_->counter("net.connections");
    m_sessions_done_ = metrics_->counter("net.sessions_completed");
    m_disconnects_ = metrics_->counter("net.disconnects");
    m_frames_in_ = metrics_->counter("net.frames_in");
    m_bytes_in_ = metrics_->counter("net.bytes_in");
    m_traces_in_ = metrics_->counter("net.traces_in");
    m_decode_errors_ = metrics_->counter("net.decode_errors");
    m_stalls_ = metrics_->counter("net.backpressure_stalls");
    m_stall_ns_ = metrics_->counter("net.backpressure_stall_ns");
    m_overrides_ = metrics_->counter("net.backpressure_overrides");
    m_violations_sent_ = metrics_->counter("net.violations_sent");
    m_violations_unroutable_ = metrics_->counter("net.violations_unroutable");
    m_report_send_errors_ = metrics_->counter("net.report_send_errors");
    m_active_ = metrics_->gauge("net.active_connections");
    m_inflight_ = metrics_->gauge("net.inflight_bytes");
    m_clock_skew_ = metrics_->counter("net.ingest_clock_skew");
    m_report_latency_ = metrics_->histogram("net.violation_report_ns");
    m_stage_ingest_ = metrics_->histogram("stage.ingest_to_read_ns");
    m_stage_report_ = metrics_->histogram("stage.read_to_report_ns");
    if (!opts_.state_dir.empty()) {
      m_wal_appends_ = metrics_->counter("durable.wal.appends");
      m_wal_bytes_ = metrics_->counter("durable.wal.bytes");
      m_wal_errors_ = metrics_->counter("durable.wal.errors");
      m_checkpoints_ = metrics_->counter("durable.checkpoints");
      m_checkpoint_errors_ = metrics_->counter("durable.checkpoint_errors");
      m_wal_segments_g_ = metrics_->gauge("durable.wal.segments");
      m_ckpt_ns_ = metrics_->histogram("durable.checkpoint_ns");
    }
  }
}

VerifierServer::~VerifierServer() {
  Shutdown();
  WaitReport();
}

Status VerifierServer::Start() {
  auto listener = Listener::Listen(opts_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();

  OnlineVerifier::Options vo;
  vo.n_shards = opts_.n_shards;
  vo.dynamic_clients = true;
  vo.obs.metrics = metrics_;
  vo.obs.progress_interval_ms = opts_.progress_interval_ms;
  vo.obs.print_progress = opts_.print_progress;
  vo.obs.events = opts_.events;
  vo.obs.watchdog = opts_.watchdog;
  vo.on_bug = [this](const BugDescriptor& bug) { OnBug(bug); };
  // Client 0 is the server's gate stream: held open (and empty) it pins the
  // pipeline watermark at 0 so nothing dispatches before all expected
  // sessions joined — concurrently-connecting replay clients with
  // overlapping virtual timestamps then merge in correct global order.
  gate_client_ = 0;
  durable_ = !opts_.state_dir.empty();
  if (durable_) {
    Status s = ckpts_.Init(opts_.state_dir);
    if (s.ok()) s = RecoverState(vo);
    if (!s.ok()) return s;
  } else {
    online_ = std::make_unique<OnlineVerifier>(1, config_, vo);
    if (opts_.expected_sessions == 0) {
      // Run-until-shutdown service: no join barrier; sessions are admitted
      // at the live dispatch floor instead.
      online_->Close(gate_client_);
      gate_closed_ = true;
    }
  }
  accepting_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (durable_ && opts_.checkpoint_interval_ms > 0) {
    ckpt_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  if (opts_.diagnose) {
    diag_thread_ = std::thread([this] { DiagnoseLoop(); });
  }
  if (opts_.events != nullptr) {
    opts_.events->Recordf(obs::EventSeverity::kInfo, "net.server",
                          "listening on port %u (%u shards)",
                          static_cast<unsigned>(port_),
                          static_cast<unsigned>(opts_.n_shards));
  }
  return Status::Ok();
}

void VerifierServer::AcceptLoop() {
  obs::Watchdog::Slot* wd = opts_.watchdog != nullptr
                                ? opts_.watchdog->Register("net.acceptor")
                                : nullptr;
  while (accepting_.load(std::memory_order_acquire)) {
    // Accept polls at kPollMs, so one beat per iteration keeps the slot
    // fresh regardless of traffic.
    if (wd != nullptr) wd->Beat();
    auto sock = listener_.Accept(kPollMs);
    if (!sock.ok()) {
      if (sock.status().code() == StatusCode::kBusy) continue;
      break;  // listener closed (shutdown) or fatal
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) break;
    auto session = std::make_unique<Session>();
    session->id = static_cast<uint32_t>(sessions_.size());
    session->sock = std::move(*sock);
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    if (m_connections_ != nullptr) m_connections_->Inc();
    if (m_active_ != nullptr) m_active_->Add(1);
    if (opts_.events != nullptr) {
      opts_.events->Recordf(obs::EventSeverity::kInfo, "net.server",
                            "session %u accepted", raw->id);
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(*raw); });
  }
  if (opts_.watchdog != nullptr) opts_.watchdog->Retire(wd);
}

void VerifierServer::ReaderLoop(Session& session) {
  if (opts_.watchdog != nullptr) {
    char name[32];
    std::snprintf(name, sizeof(name), "net.session%u.reader", session.id);
    session.wd_slot = opts_.watchdog->Register(name);
  }
  session.sock.SetRecvTimeoutMs(kPollMs);
  session.sock.SetSendTimeoutMs(kSendTimeoutMs);
  FrameDecoder decoder(opts_.max_frame_bytes);
  char buf[kRecvChunk];
  uint64_t idle_since_ns = obs::NowNs();
  bool alive = true;
  while (alive) {
    // Recv polls at kPollMs; a beat per iteration covers both the idle and
    // the busy path.
    if (session.wd_slot != nullptr) session.wd_slot->Beat();
    auto got = session.sock.Recv(buf, sizeof(buf));
    if (!got.ok()) {
      if (got.status().code() != StatusCode::kBusy) break;  // peer gone
      // Timeout tick: enforce the idle budget, but only on sessions that
      // still owe us stream data — a drained session legitimately sits
      // idle waiting for the server-wide report.
      bool all_closed =
          session.n_streams > 0 &&
          std::all_of(session.stream_closed.begin(),
                      session.stream_closed.end(),
                      [](uint8_t c) { return c != 0; });
      if (!all_closed &&
          obs::NowNs() - idle_since_ns > opts_.idle_timeout_ms * 1000000ull) {
        FailSession(session, "idle timeout");
        break;
      }
      if (session.defunct.load(std::memory_order_relaxed)) break;
      continue;
    }
    if (*got == 0) break;  // orderly EOF
    idle_since_ns = obs::NowNs();
    if (m_bytes_in_ != nullptr) m_bytes_in_->Inc(*got);
    decoder.Feed(buf, *got);
    while (alive) {
      Frame frame;
      Status s = decoder.Poll(frame);
      if (s.code() == StatusCode::kBusy) break;
      if (!s.ok()) {
        if (m_decode_errors_ != nullptr) m_decode_errors_->Inc();
        FailSession(session, s.message());
        alive = false;
        break;
      }
      if (!HandleFrame(session, std::move(frame))) alive = false;
    }
  }
  FinishSession(session);
  if (opts_.watchdog != nullptr) opts_.watchdog->Retire(session.wd_slot);
}

bool VerifierServer::HandleFrame(Session& session, Frame frame) {
  session.last_frame_ns.store(obs::NowNs(), std::memory_order_relaxed);
  if (m_frames_in_ != nullptr) m_frames_in_->Inc();
  switch (frame.type) {
    case FrameType::kHello:
      return HandleHello(session, frame);
    case FrameType::kBatch:
      return HandleBatch(session, frame);
    case FrameType::kCloseStream: {
      auto msg = DecodeCloseStream(frame.payload);
      if (!msg.ok() || session.n_streams == 0 ||
          msg->stream >= session.n_streams) {
        if (m_decode_errors_ != nullptr) m_decode_errors_->Inc();
        FailSession(session, "bad CLOSE_STREAM");
        return false;
      }
      if (!session.stream_closed[msg->stream]) {
        session.stream_closed[msg->stream] = 1;
        online_->Close(session.base_client + msg->stream);
        bool all_closed = std::all_of(session.stream_closed.begin(),
                                      session.stream_closed.end(),
                                      [](uint8_t c) { return c != 0; });
        if (all_closed && !session.counted_complete.exchange(true)) {
          sessions_completed_.fetch_add(1, std::memory_order_relaxed);
          if (m_sessions_done_ != nullptr) m_sessions_done_->Inc();
          drain_cv_.notify_all();
        }
      }
      return true;
    }
    case FrameType::kError:
      // The peer gave up; its explanation is advisory. End the session.
      return false;
    default:
      if (m_decode_errors_ != nullptr) m_decode_errors_->Inc();
      FailSession(session, std::string("unexpected frame ") +
                               FrameTypeName(frame.type));
      return false;
  }
}

bool VerifierServer::HandleHello(Session& session, const Frame& frame) {
  auto hello = DecodeHello(frame.payload);
  if (!hello.ok()) {
    if (m_decode_errors_ != nullptr) m_decode_errors_->Inc();
    FailSession(session, "bad HELLO");
    return false;
  }
  if (session.n_streams != 0) {
    FailSession(session, "duplicate HELLO");
    return false;
  }
  if (hello->version < kMinWireVersion) {
    FailSession(session, "wire version mismatch: client " +
                             std::to_string(hello->version) + ", server " +
                             std::to_string(kWireVersion) + " (min " +
                             std::to_string(kMinWireVersion) + ")");
    return false;
  }
  // Negotiate down: a newer client is served at our version, an older one
  // at its own (it then receives v1 violation payloads).
  session.version = std::min(hello->version, kWireVersion);
  if (hello->n_streams == 0 || hello->n_streams > opts_.max_streams) {
    FailSession(session, "invalid stream count");
    return false;
  }
  HelloAckMsg ack;
  ack.version = session.version;
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      FailSession(session, "server draining");
      return false;
    }
    session.resumable = hello->resumable;
    if (hello->has_resume) {
      // v5 resume: re-attach to the stream state a resumable session parked
      // when its connection dropped. No match (wrong base, stream-count
      // mismatch, state lost to a restart) falls back to a fresh
      // allocation, which the client detects by the differing base id.
      auto it = parked_.find(hello->resume_base);
      if (it != parked_.end() && it->second.n_streams == hello->n_streams) {
        ParkedSession saved = std::move(it->second);
        parked_.erase(it);
        const uint32_t base = hello->resume_base;
        session.base_client = base;
        session.floor.resize(hello->n_streams);
        session.last_ts = saved.last_ts;
        session.stream_closed = saved.stream_closed;
        // The levels the verifier already applied to these streams win over
        // anything the reconnecting HELLO declares.
        session.stream_ils = saved.stream_ils;
        ack.resume_floors.resize(hello->n_streams);
        for (uint32_t i = 0; i < hello->n_streams; ++i) {
          if (saved.stream_closed[i]) {
            // Cleanly closed before the disconnect; stays closed.
            session.floor[i] = saved.last_ts[i];
            ack.resume_floors[i] = saved.last_ts[i];
            continue;
          }
          auto reopened = online_->ReopenClient(base + i);
          if (!reopened.ok()) {
            // Drain committed between the stopping_ check and here; re-close
            // what we reopened and reject the session.
            for (uint32_t j = 0; j < i; ++j) {
              if (!saved.stream_closed[j]) online_->Close(base + j);
            }
            FailSession(session,
                        "server draining: " + reopened.status().message());
            return false;
          }
          // The reopen floor already covers everything dispatch handed out;
          // the stream's own last push keeps per-stream order seamless.
          session.floor[i] = std::max(reopened->floor, saved.last_ts[i]);
          ack.resume_floors[i] = session.floor[i];
          client_session_[base + i] = &session;
        }
        session.n_streams = hello->n_streams;
        ack.base_client = base;
        resumed = true;
      }
    }
    if (!resumed) {
    if (next_stream_slot_ + hello->n_streams > opts_.max_streams) {
      FailSession(session, "server at stream capacity");
      return false;
    }
    // All AddClient calls happen under mu_, so one session's streams get
    // contiguous verifier client ids.
    session.floor.resize(hello->n_streams);
    session.last_ts.assign(hello->n_streams, 0);
    session.stream_closed.assign(hello->n_streams, 0);
    // v4 mixed-isolation tail: streams past the declared list (or the whole
    // session, pre-v4) run at SERIALIZABLE — full-strength verification.
    session.stream_ils.assign(hello->n_streams,
                              IsolationLevel::kSerializable);
    for (size_t i = 0; i < hello->stream_ils.size(); ++i) {
      session.stream_ils[i] = hello->stream_ils[i];
    }
    for (uint32_t i = 0; i < hello->n_streams; ++i) {
      auto added = online_->AddClient();
      if (!added.ok()) {
        // The verifier was sealed (drain already under way) between our
        // stopping_ check and here; reject the session instead of letting a
        // late registration corrupt a draining pipeline.
        FailSession(session, "server draining: " + added.status().message());
        return false;
      }
      if (i == 0) session.base_client = added->id;
      session.floor[i] = added->floor;
      client_session_[added->id] = &session;
    }
    next_stream_slot_ += hello->n_streams;
    session.n_streams = hello->n_streams;
    ++sessions_handshaken_;
    if (!gate_closed_ && opts_.expected_sessions > 0 &&
        sessions_handshaken_ >= opts_.expected_sessions) {
      // The join barrier: every expected session is registered, dispatch
      // may begin.
      online_->Close(gate_client_);
      gate_closed_ = true;
    }
    ack.base_client = session.base_client;
    }  // !resumed
  }
  if (!resumed) {
    // WAL registrations go outside mu_ (durable_mu_ nests before mu_, never
    // after). Replay is idempotent by id, so an id both checkpointed and
    // logged here is skipped on recovery. A resumed session's ids were
    // already registered by its first handshake.
    for (uint32_t i = 0; i < session.n_streams; ++i) {
      WalAddClient(session.base_client + i);
    }
  }
  SendToSession(session, EncodeFrame(FrameType::kHelloAck,
                                     EncodeHelloAck(ack)));
  if (opts_.events != nullptr) {
    opts_.events->Recordf(obs::EventSeverity::kInfo, "net.server",
                          "session %u handshake: %u streams, wire v%u%s",
                          session.id, session.n_streams, session.version,
                          resumed ? " (resumed)" : "");
  }
  return true;
}

bool VerifierServer::HandleBatch(Session& session, const Frame& frame) {
  if (session.n_streams == 0) {
    FailSession(session, "BATCH before HELLO");
    return false;
  }
  auto batch = DecodeBatch(frame.payload);
  if (!batch.ok()) {
    if (m_decode_errors_ != nullptr) m_decode_errors_->Inc();
    FailSession(session, batch.status().message());
    return false;
  }
  if (batch->stream >= session.n_streams ||
      session.stream_closed[batch->stream]) {
    FailSession(session, "BATCH for invalid or closed stream");
    return false;
  }
  const ClientId client = session.base_client + batch->stream;
  Timestamp& last_ts = session.last_ts[batch->stream];
  const Timestamp floor = session.floor[batch->stream];
  size_t batch_bytes = 0;
  for (const Trace& t : batch->traces) {
    if (t.ts_bef() > t.ts_aft()) {
      FailSession(session, "trace with inverted interval");
      return false;
    }
    if (t.ts_bef() < floor || t.ts_bef() < last_ts) {
      // Either the stream violated its own non-decreasing ts_bef contract,
      // or a late-joining session replayed traces older than what the
      // verifier already dispatched past (admission floor).
      FailSession(session, "trace below stream order floor");
      return false;
    }
    last_ts = t.ts_bef();
    batch_bytes += t.ApproxBytes();
  }
  const uint64_t read_ns = obs::NowNs();
  if (batch->ingest_ns != 0 && m_stage_ingest_ != nullptr) {
    // v3 sessions stamp the batch at push time. Both stamps are steady-clock
    // reads, comparable only when client and server share a machine
    // (loopback deployments); cross-host skew shows up as negative deltas.
    // Those still count as a sample — dropping them would make this
    // histogram's count diverge from the other stage histograms' — they are
    // just clamped to zero and tallied separately.
    if (read_ns > batch->ingest_ns) {
      m_stage_ingest_->Record(read_ns - batch->ingest_ns);
    } else {
      m_stage_ingest_->Record(0);
      if (m_clock_skew_ != nullptr) m_clock_skew_->Inc();
    }
  }
  Backpressure(session, batch_bytes);
  const IsolationLevel stream_il = session.stream_ils[batch->stream];
  for (Trace& t : batch->traces) {
    t.client = client;
    // Session-declared isolation (v4 HELLO tail) combines weakest-wins with
    // the record's own tag, and is applied before the WAL append so a
    // replayed run re-derives identical per-txn levels.
    if (stream_il < t.il) t.il = stream_il;
    // Re-stamp with the server's read time: downstream stage histograms
    // (read->verify, read->certify, read->report) attribute latency *inside*
    // the verifier, independent of how long the client sat on the batch.
    // Stamped before the WAL append so replayed traces carry their client.
    t.ingest_ns = read_ns;
  }
  if (opts_.diagnose) {
    // Keep the history for the minimizer. A violation's offending traces
    // always precede it, so a snapshot taken when the bug surfaces is a
    // reproducing superset.
    std::lock_guard<std::mutex> lock(diag_mu_);
    recorded_.insert(recorded_.end(), batch->traces.begin(),
                     batch->traces.end());
  }
  const uint64_t n = batch->traces.size();
  {
    // Durable ordering: the WAL append, the routing-map update and the push
    // happen under durable_mu_, so a checkpoint cut (which also holds
    // durable_mu_) cleanly partitions every trace into "in the checkpoint"
    // or "in the log past the cut" — never both, never neither.
    std::unique_lock<std::mutex> durable_lock(durable_mu_, std::defer_lock);
    if (durable_) {
      durable_lock.lock();
      Status ws;
      for (const Trace& t : batch->traces) {
        ws = wal_.AppendTrace(t);
        if (!ws.ok()) break;
      }
      if (ws.ok()) ws = wal_.Sync();
      if (!ws.ok()) {
        // Lost durability is a failed session, not a poisoned verifier: the
        // client gets the error and can reconnect/retry once the disk
        // recovers; admitting the batch unlogged would silently break the
        // resume-with-identical-verdicts contract.
        if (m_wal_errors_ != nullptr) m_wal_errors_->Inc();
        if (opts_.events != nullptr) {
          opts_.events->Recordf(obs::EventSeverity::kError, "durable",
                                "WAL append failed: %s", ws.message().c_str());
        }
        durable_lock.unlock();
        FailSession(session, "WAL append failed: " + ws.message());
        return false;
      }
      wal_next_seq_.store(wal_.next_seq(), std::memory_order_relaxed);
      wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
      if (m_wal_appends_ != nullptr) m_wal_appends_->Inc(n);
      if (m_wal_bytes_ != nullptr) m_wal_bytes_->Inc(batch_bytes);
      if (m_wal_segments_g_ != nullptr) {
        m_wal_segments_g_->Set(static_cast<int64_t>(wal_.segment_count()));
      }
    }
    {
      // Record txn -> client before Push: a single-shard engine can surface
      // the violation (and route it) the moment the batch is verified.
      std::lock_guard<std::mutex> lock(mu_);
      for (const Trace& t : batch->traces) {
        txn_client_.emplace(t.txn, client);
      }
    }
    for (Trace& t : batch->traces) {
      online_->Push(client, std::move(t));
    }
    // Counted inside the durable scope so a checkpoint's saved totals agree
    // exactly with its cut (no batch half-counted across the boundary).
    pushed_bytes_.fetch_add(batch_bytes, std::memory_order_relaxed);
    traces_received_.fetch_add(n, std::memory_order_relaxed);
  }
  const uint64_t total_received =
      traces_received_.load(std::memory_order_relaxed);
  if (durable_ && opts_.checkpoint_every_traces > 0 &&
      total_received - traces_at_last_ckpt_.load(std::memory_order_relaxed) >=
          opts_.checkpoint_every_traces) {
    ckpt_thread_cv_.notify_one();
  }
  const uint64_t session_total =
      session.traces_received.fetch_add(n, std::memory_order_relaxed) + n;
  if (m_traces_in_ != nullptr) m_traces_in_->Inc(n);
  SendToSession(session,
                EncodeFrame(FrameType::kBatchAck,
                            EncodeBatchAck(BatchAckMsg{session_total})));
  return !session.defunct.load(std::memory_order_relaxed);
}

void VerifierServer::Backpressure(Session& session, size_t incoming_bytes) {
  auto inflight = [this] {
    uint64_t pushed = pushed_bytes_.load(std::memory_order_relaxed);
    uint64_t verified = online_->verified_bytes();
    return pushed > verified ? pushed - verified : 0;
  };
  uint64_t cur = inflight();
  if (m_inflight_ != nullptr) m_inflight_->Set(static_cast<int64_t>(cur));
  if (cur + incoming_bytes <= opts_.max_inflight_bytes) return;
  if (m_stalls_ != nullptr) m_stalls_->Inc();
  if (opts_.events != nullptr) {
    opts_.events->Recordf(
        obs::EventSeverity::kWarn, "net.server",
        "backpressure engaged on session %u: %llu MiB in flight", session.id,
        static_cast<unsigned long long>(cur >> 20));
  }
  const uint64_t start_ns = obs::NowNs();
  uint64_t last_progress_ns = start_ns;
  uint64_t last_verified = online_->verified_bytes();
  bool overrode = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // A backpressured reader is TCP flow control doing its job, not a
    // wedged thread; keep its heartbeat alive for the duration.
    if (session.wd_slot != nullptr) session.wd_slot->Beat();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    cur = inflight();
    if (cur + incoming_bytes <= opts_.max_inflight_bytes) break;
    uint64_t verified = online_->verified_bytes();
    if (verified != last_verified) {
      last_verified = verified;
      last_progress_ns = obs::NowNs();
      continue;
    }
    if (obs::NowNs() - last_progress_ns >
        opts_.stall_override_ms * 1000000ull) {
      // Dispatch is starved on another stream's watermark, not on us;
      // blocking here would deadlock the very stream it waits for. Admit
      // the frame and account the override.
      if (m_overrides_ != nullptr) m_overrides_->Inc();
      overrode = true;
      break;
    }
  }
  const uint64_t stalled_ns = obs::NowNs() - start_ns;
  if (m_stall_ns_ != nullptr) m_stall_ns_->Inc(stalled_ns);
  if (opts_.events != nullptr) {
    opts_.events->Recordf(
        obs::EventSeverity::kInfo, "net.server",
        "backpressure released on session %u after %llu ms%s", session.id,
        static_cast<unsigned long long>(stalled_ns / 1000000ull),
        overrode ? " (starvation override)" : "");
  }
  if (m_inflight_ != nullptr) {
    m_inflight_->Set(static_cast<int64_t>(inflight()));
  }
}

void VerifierServer::SendToSession(Session& session,
                                   const std::string& frame) {
  if (session.defunct.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(session.write_mu);
  Status s = session.sock.SendAll(frame.data(), frame.size());
  if (!s.ok()) session.defunct.store(true, std::memory_order_relaxed);
}

void VerifierServer::FailSession(Session& session,
                                 const std::string& message) {
  if (session.defunct.exchange(true)) return;
  if (opts_.events != nullptr) {
    opts_.events->Recordf(obs::EventSeverity::kError, "net.server",
                          "session %u failed: %s", session.id,
                          message.c_str());
  }
  std::lock_guard<std::mutex> lock(session.write_mu);
  std::string frame = EncodeFrame(FrameType::kError, EncodeError(message));
  session.sock.SendAll(frame.data(), frame.size());  // best effort
  session.sock.ShutdownBoth();
}

void VerifierServer::FinishSession(Session& session) {
  bool had_open = false;
  bool parked = false;
  if (session.n_streams > 0) {
    bool any_open = false;
    for (uint32_t i = 0; i < session.n_streams; ++i) {
      if (!session.stream_closed[i]) any_open = true;
    }
    if (any_open && session.resumable &&
        !stopping_.load(std::memory_order_relaxed)) {
      // A resumable session that dropped with open streams is expected
      // back: park its per-stream state (captured as it stands at
      // disconnect, before the force-close below) so a resume HELLO can
      // re-admit the same client ids. The streams are still closed in the
      // verifier meanwhile — an absent client must not pin the watermark.
      std::lock_guard<std::mutex> lock(mu_);
      ParkedSession p;
      p.n_streams = session.n_streams;
      p.stream_ils = session.stream_ils;
      p.last_ts = session.last_ts;
      p.stream_closed = session.stream_closed;
      parked_.emplace(session.base_client, std::move(p));
      parked = true;
    }
    for (uint32_t i = 0; i < session.n_streams; ++i) {
      if (!session.stream_closed[i]) {
        session.stream_closed[i] = 1;
        online_->Close(session.base_client + i);
        had_open = true;
      }
    }
    if (!session.counted_complete.exchange(true) && !parked) {
      sessions_completed_.fetch_add(1, std::memory_order_relaxed);
      if (m_sessions_done_ != nullptr) m_sessions_done_->Inc();
      drain_cv_.notify_all();
    }
  }
  if (had_open && m_disconnects_ != nullptr) m_disconnects_->Inc();
  if (m_active_ != nullptr) m_active_->Add(-1);
  if (opts_.events != nullptr) {
    opts_.events->Recordf(
        obs::EventSeverity::kInfo, "net.server",
        "session %u closed (%llu traces%s)", session.id,
        static_cast<unsigned long long>(
            session.traces_received.load(std::memory_order_relaxed)),
        had_open ? ", streams force-closed" : "");
  }
}

void VerifierServer::OnBug(const BugDescriptor& bug) {
  if (opts_.events != nullptr) {
    opts_.events->Recordf(obs::EventSeverity::kError, "verifier",
                          "violation: %s on key %llu", BugTypeName(bug.type),
                          static_cast<unsigned long long>(bug.key));
  }
  // Dispatcher thread. Minimization is far too slow for this thread: hand
  // the bug to the background worker (one diagnosis per distinct
  // (type, key), bounded by max_diagnoses).
  if (opts_.diagnose) {
    std::lock_guard<std::mutex> lock(diag_mu_);
    bool seen = false;
    for (const BugDescriptor& q : diag_queue_) {
      if (q.type == bug.type && q.key == bug.key) {
        seen = true;
        break;
      }
    }
    for (const diagnose::Diagnosis& d : diagnoses_) {
      if (d.bug.type == bug.type && d.bug.key == bug.key) {
        seen = true;
        break;
      }
    }
    if (!seen && diagnoses_enqueued_ < opts_.max_diagnoses) {
      ++diagnoses_enqueued_;
      diag_queue_.push_back(bug);
      diag_cv_.notify_one();
    }
  }
  // Route to every session owning one of the involved transactions; the
  // offending client learns about its violation even when an innocent
  // reader's transaction is also implicated.
  std::vector<Session*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (TxnId txn : bug.txns) {
      auto it = txn_client_.find(txn);
      if (it == txn_client_.end()) continue;
      // A restored transaction's session died with the previous process;
      // its client id then has no live session and the bug is unroutable.
      auto sit = client_session_.find(it->second);
      if (sit == client_session_.end()) continue;
      if (std::find(targets.begin(), targets.end(), sit->second) ==
          targets.end()) {
        targets.push_back(sit->second);
      }
    }
  }
  if (targets.empty()) {
    if (m_violations_unroutable_ != nullptr) m_violations_unroutable_->Inc();
    return;
  }
  // Frames are encoded lazily per negotiated wire version: v1 sessions get
  // the legacy payload, v2 sessions the structured witness.
  std::string frame_by_version[2];
  const uint64_t now_ns = obs::NowNs();
  for (Session* s : targets) {
    if (s->defunct.load(std::memory_order_relaxed)) {
      if (m_report_send_errors_ != nullptr) m_report_send_errors_->Inc();
      continue;
    }
    const uint32_t v = std::min<uint32_t>(std::max<uint32_t>(s->version, 1), 2);
    std::string& frame = frame_by_version[v - 1];
    if (frame.empty()) {
      frame = EncodeFrame(FrameType::kViolation, EncodeViolation(bug, v));
    }
    SendToSession(*s, frame);
    if (s->defunct.load(std::memory_order_relaxed)) {
      if (m_report_send_errors_ != nullptr) m_report_send_errors_->Inc();
      continue;
    }
    s->violations_sent.fetch_add(1, std::memory_order_relaxed);
    if (m_violations_sent_ != nullptr) m_violations_sent_->Inc();
    if (m_report_latency_ != nullptr) {
      uint64_t arrival = s->last_frame_ns.load(std::memory_order_relaxed);
      if (arrival != 0 && now_ns > arrival) {
        m_report_latency_->Record(now_ns - arrival);
        // Final pipeline stage: server read of the (latest) offending frame
        // to the violation report leaving for the client.
        if (m_stage_report_ != nullptr) {
          m_stage_report_->Record(now_ns - arrival);
        }
      }
    }
  }
}

void VerifierServer::DiagnoseLoop() {
  obs::Watchdog::Slot* wd = opts_.watchdog != nullptr
                                ? opts_.watchdog->Register("diagnose.worker")
                                : nullptr;
  while (true) {
    BugDescriptor target;
    std::vector<Trace> snapshot;
    {
      std::unique_lock<std::mutex> lock(diag_mu_);
      // Unbounded idle wait between violations — suspend, don't stall.
      if (wd != nullptr) wd->Suspend();
      diag_cv_.wait(lock, [this] { return diag_stop_ || !diag_queue_.empty(); });
      if (wd != nullptr) wd->Resume();
      if (diag_queue_.empty()) break;  // stop requested, queue drained
      target = std::move(diag_queue_.front());
      diag_queue_.pop_front();
      snapshot = recorded_;  // reproducing superset of the violation
    }
    if (opts_.events != nullptr) {
      opts_.events->Recordf(
          obs::EventSeverity::kInfo, "diagnose",
          "diagnosis started: %s on key %llu (%llu traces)",
          BugTypeName(target.type),
          static_cast<unsigned long long>(target.key),
          static_cast<unsigned long long>(snapshot.size()));
    }
    diagnose::MinimizeOptions mo;
    mo.max_oracle_runs = opts_.diagnose_max_oracle_runs;
    mo.metrics = metrics_;
    // A single minimization legitimately runs minutes on big histories; its
    // oracle re-runs never heartbeat, so tell the watchdog we're busy, not
    // wedged.
    if (wd != nullptr) wd->Suspend();
    auto d = diagnose::Diagnose(config_, std::move(snapshot), target, mo);
    if (wd != nullptr) wd->Resume();
    if (opts_.events != nullptr) {
      opts_.events->Recordf(obs::EventSeverity::kInfo, "diagnose",
                            "diagnosis %s for %s on key %llu",
                            d.ok() ? "done" : "inconclusive",
                            BugTypeName(target.type),
                            static_cast<unsigned long long>(target.key));
    }
    if (!d.ok()) continue;  // e.g. a cross-stream race the oracle can't see
    if (!opts_.diagnose_out_dir.empty()) {
      size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(diag_mu_);
        index = diagnoses_.size();
      }
      diagnose::WriteDiagnosisArtifacts(
          *d, opts_.diagnose_out_dir + "/diag_" + std::to_string(index));
    }
    std::lock_guard<std::mutex> lock(diag_mu_);
    diagnoses_.push_back(std::move(*d));
  }
  if (opts_.watchdog != nullptr) opts_.watchdog->Retire(wd);
}

void VerifierServer::StopDiagnoseWorker() {
  if (!diag_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    diag_stop_ = true;
  }
  diag_cv_.notify_all();
  diag_thread_.join();
}

void VerifierServer::WalAddClient(ClientId client) {
  if (!durable_) return;
  std::lock_guard<std::mutex> lock(durable_mu_);
  Status s = wal_.AppendAddClient(client);
  if (s.ok()) s = wal_.Sync();
  if (!s.ok()) {
    if (m_wal_errors_ != nullptr) m_wal_errors_->Inc();
    if (opts_.events != nullptr) {
      opts_.events->Recordf(obs::EventSeverity::kError, "durable",
                            "WAL client registration failed: %s",
                            s.message().c_str());
    }
    return;
  }
  wal_next_seq_.store(wal_.next_seq(), std::memory_order_relaxed);
  wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
  if (m_wal_appends_ != nullptr) m_wal_appends_->Inc();
}

Status VerifierServer::RecoverState(const OnlineVerifier::Options& vo) {
  const uint64_t fingerprint = serde::ConfigFingerprint(config_);
  uint64_t cut = 0;
  uint32_t saved_slot = 0;
  uint64_t saved_traces = 0;
  std::unordered_map<TxnId, ClientId> saved_routes;
  bool restored = false;

  // Newest checkpoint first, older ones as fallback. Each attempt gets a
  // fresh verifier: a LoadState that fails midway leaves its target
  // half-overwritten, never to be reused.
  auto candidates = ckpts_.List();
  for (auto it = candidates.rbegin(); it != candidates.rend() && !restored;
       ++it) {
    auto loaded = durable::CheckpointStore::ReadCheckpoint(it->second);
    if (!loaded.ok()) {
      if (opts_.events != nullptr) {
        opts_.events->Recordf(obs::EventSeverity::kWarn, "durable",
                              "skipping checkpoint: %s",
                              loaded.status().message().c_str());
      }
      continue;
    }
    // Config and shard-count mismatches are operator errors, not corruption:
    // falling back to an older file would just fail the same way, and
    // silently verifying under a different config would change verdicts.
    if (loaded->meta.config_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint " + loaded->path +
          " was written under a different verifier configuration");
    }
    if (loaded->meta.n_shards != opts_.n_shards) {
      return Status::FailedPrecondition(
          "checkpoint " + loaded->path + " was written with --shards=" +
          std::to_string(loaded->meta.n_shards) + ", server is running " +
          std::to_string(opts_.n_shards));
    }
    auto fresh = std::make_unique<OnlineVerifier>(1, config_, vo);
    StateReader r(loaded->payload);
    Status s;
    uint32_t slot = 0;
    uint64_t traces = 0;
    uint32_t n_routes = 0;
    std::unordered_map<TxnId, ClientId> routes;
    if ((s = r.GetU32(slot)).ok() && (s = r.GetU64(traces)).ok() &&
        (s = r.GetU32(n_routes)).ok()) {
      if (!r.CountFits(n_routes, 12)) {
        s = Status::InvalidArgument("server state: absurd route count");
      }
      routes.reserve(n_routes);
      for (uint32_t i = 0; i < n_routes && s.ok(); ++i) {
        uint64_t txn = 0;
        uint32_t cl = 0;
        if ((s = r.GetU64(txn)).ok() && (s = r.GetU32(cl)).ok()) {
          routes.emplace(txn, cl);
        }
      }
    }
    if (s.ok()) s = fresh->LoadState(r);
    if (!s.ok()) {
      if (opts_.events != nullptr) {
        opts_.events->Recordf(obs::EventSeverity::kWarn, "durable",
                              "checkpoint %s unusable: %s",
                              loaded->path.c_str(), s.message().c_str());
      }
      continue;  // the half-loaded verifier is discarded with `fresh`
    }
    online_ = std::move(fresh);
    cut = loaded->meta.cut;
    saved_slot = slot;
    saved_traces = traces;
    saved_routes = std::move(routes);
    restored = true;
  }
  if (!restored) {
    if (!candidates.empty() && opts_.events != nullptr) {
      // Every checkpoint was unusable; the WAL-start guard below decides
      // whether the surviving log still covers the whole history.
      opts_.events->Recordf(obs::EventSeverity::kWarn, "durable",
                            "no usable checkpoint; replaying the full WAL");
    }
    online_ = std::make_unique<OnlineVerifier>(1, config_, vo);
    cut = 0;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_client_ = std::move(saved_routes);
  }

  // Replay the log past the cut into the restored verifier. Registrations
  // below the checkpoint's client count are already part of the restored
  // state (the WAL write happens outside mu_, so an id can legitimately be
  // in both); fresh ones must come back with exactly the logged id.
  const uint32_t base = online_->client_count();
  uint64_t replayed_traces = 0;
  durable::WalReplayStats stats;
  Status s = durable::WalReplay(
      opts_.state_dir, cut,
      [&](const durable::WalEntry& entry) -> Status {
        if (entry.kind == durable::WalEntry::Kind::kAddClient) {
          if (entry.client < base) return Status::Ok();
          auto added = online_->AddClient();
          if (!added.ok()) return added.status();
          if (added->id != entry.client) {
            return Status::Internal(
                "WAL replay client id mismatch: log says " +
                std::to_string(entry.client) + ", verifier assigned " +
                std::to_string(added->id));
          }
          return Status::Ok();
        }
        online_->Push(entry.trace.client, entry.trace);
        ++replayed_traces;
        return Status::Ok();
      },
      &stats);
  if (!s.ok()) return s;

  recovery_.resumed = restored || stats.segments_read > 0;
  recovery_.checkpoint_cut = cut;
  recovery_.entries_replayed = stats.entries_replayed;
  recovery_.entries_skipped = stats.entries_skipped;
  recovery_.torn_bytes = stats.torn_bytes;

  if (recovery_.resumed) {
    // Every restored client belonged to a session that died with the old
    // process; close them all (the gate included) so the run can finish.
    // New sessions register fresh streams — the verifier stays dynamic.
    const uint32_t total = online_->client_count();
    for (ClientId c = 0; c < total; ++c) online_->Close(c);
    gate_closed_ = true;
    next_stream_slot_ = std::max(total > 0 ? total - 1 : 0, saved_slot);
    traces_received_.store(saved_traces + replayed_traces,
                           std::memory_order_relaxed);
    // Re-seed backpressure accounting: in-flight = pushed - verified must
    // equal what the pipeline actually buffers after the replay.
    pushed_bytes_.store(
        online_->verified_bytes() + online_->ApproxBufferedBytes(),
        std::memory_order_relaxed);
  } else if (opts_.expected_sessions == 0) {
    online_->Close(gate_client_);
    gate_closed_ = true;
  }

  durable::WalWriter::Options wo;
  wo.segment_bytes = opts_.wal_segment_bytes;
  s = wal_.Open(opts_.state_dir, stats.next_seq, wo);
  if (!s.ok()) return s;
  last_ckpt_cut_ = cut;
  traces_at_last_ckpt_.store(traces_received_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  wal_next_seq_.store(wal_.next_seq(), std::memory_order_relaxed);
  wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
  if (m_wal_segments_g_ != nullptr) {
    m_wal_segments_g_->Set(static_cast<int64_t>(wal_.segment_count()));
  }
  if (opts_.events != nullptr && recovery_.resumed) {
    opts_.events->Recordf(
        obs::EventSeverity::kInfo, "durable",
        "resumed from %s cut %llu: %llu WAL entries replayed, %llu skipped, "
        "%llu torn bytes truncated",
        restored ? "checkpoint" : "empty state (WAL only),",
        static_cast<unsigned long long>(cut),
        static_cast<unsigned long long>(stats.entries_replayed),
        static_cast<unsigned long long>(stats.entries_skipped),
        static_cast<unsigned long long>(stats.torn_bytes));
  }
  return Status::Ok();
}

Status VerifierServer::TriggerCheckpoint() {
  if (!durable_) {
    return Status::FailedPrecondition("server has no state dir");
  }
  return DoCheckpoint();
}

Status VerifierServer::DoCheckpoint() {
  std::lock_guard<std::mutex> durable_lock(durable_mu_);
  const uint64_t start_ns = obs::NowNs();
  // Rotate first: the cut then sits on a segment boundary, so every fully
  // pre-cut segment is garbage-collectable the moment the checkpoint lands.
  Status s = wal_.Rotate();
  if (!s.ok()) {
    if (m_checkpoint_errors_ != nullptr) m_checkpoint_errors_->Inc();
    return s;
  }
  const uint64_t cut = wal_.next_seq();
  if (checkpoints_written_.load(std::memory_order_relaxed) > 0 &&
      cut == last_ckpt_cut_) {
    return Status::Ok();  // nothing accepted since the last checkpoint
  }
  std::string payload;
  StateWriter w(payload);
  uint64_t traces_at_cut = 0;
  {
    // Server section first. durable_mu_ -> mu_ is the sanctioned order;
    // released before SaveState, which must be free to wait on a dispatcher
    // that may itself be blocked on mu_ inside OnBug.
    std::lock_guard<std::mutex> lock(mu_);
    traces_at_cut = traces_received_.load(std::memory_order_relaxed);
    w.PutU32(next_stream_slot_);
    w.PutU64(traces_at_cut);
    w.PutU32(static_cast<uint32_t>(txn_client_.size()));
    for (const auto& [txn, cl] : txn_client_) {
      w.PutU64(txn);
      w.PutU32(cl);
    }
  }
  s = online_->SaveState(w);
  if (!s.ok()) {
    if (m_checkpoint_errors_ != nullptr) m_checkpoint_errors_->Inc();
    return s;
  }
  durable::CheckpointStore::Meta meta;
  meta.cut = cut;
  meta.config_fingerprint = serde::ConfigFingerprint(config_);
  meta.n_shards = opts_.n_shards;
  s = ckpts_.Write(meta, payload);
  if (!s.ok()) {
    if (m_checkpoint_errors_ != nullptr) m_checkpoint_errors_->Inc();
    if (opts_.events != nullptr) {
      opts_.events->Recordf(obs::EventSeverity::kError, "durable",
                            "checkpoint write failed: %s",
                            s.message().c_str());
    }
    return s;
  }
  // GC below the *previous* cut, not this one: the store retains two
  // checkpoints, and falling back to the older needs the WAL from its cut
  // forward. Segments below the previous cut predate every retained
  // checkpoint and are truly dead.
  wal_.RemoveSegmentsBelow(last_ckpt_cut_);
  last_ckpt_cut_ = cut;
  last_ckpt_ns_.store(obs::NowNs(), std::memory_order_relaxed);
  traces_at_last_ckpt_.store(traces_at_cut, std::memory_order_relaxed);
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
  wal_next_seq_.store(wal_.next_seq(), std::memory_order_relaxed);
  if (m_checkpoints_ != nullptr) m_checkpoints_->Inc();
  if (m_wal_segments_g_ != nullptr) {
    m_wal_segments_g_->Set(static_cast<int64_t>(wal_.segment_count()));
  }
  if (m_ckpt_ns_ != nullptr) m_ckpt_ns_->Record(obs::NowNs() - start_ns);
  if (opts_.events != nullptr) {
    opts_.events->Recordf(
        obs::EventSeverity::kInfo, "durable",
        "checkpoint at cut %llu (%llu bytes, %llu ms)",
        static_cast<unsigned long long>(cut),
        static_cast<unsigned long long>(payload.size()),
        static_cast<unsigned long long>((obs::NowNs() - start_ns) /
                                        1000000ull));
  }
  return Status::Ok();
}

void VerifierServer::CheckpointLoop() {
  obs::Watchdog::Slot* wd =
      opts_.watchdog != nullptr ? opts_.watchdog->Register("durable.checkpointer")
                                : nullptr;
  std::unique_lock<std::mutex> lock(ckpt_thread_mu_);
  while (!ckpt_stop_) {
    if (wd != nullptr) wd->Suspend();
    ckpt_thread_cv_.wait_for(
        lock, std::chrono::milliseconds(opts_.checkpoint_interval_ms),
        [this] {
          return ckpt_stop_ ||
                 (opts_.checkpoint_every_traces > 0 &&
                  traces_received_.load(std::memory_order_relaxed) -
                          traces_at_last_ckpt_.load(
                              std::memory_order_relaxed) >=
                      opts_.checkpoint_every_traces);
        });
    if (wd != nullptr) wd->Resume();
    if (ckpt_stop_) break;
    lock.unlock();
    if (wd != nullptr) wd->Beat();
    Status s = DoCheckpoint();
    // FailedPrecondition means the verifier is already draining — the final
    // report supersedes any further checkpoint; everything else is logged
    // inside DoCheckpoint and retried next tick.
    (void)s;
    lock.lock();
  }
  if (opts_.watchdog != nullptr) opts_.watchdog->Retire(wd);
}

void VerifierServer::StopCheckpointWorker() {
  if (!ckpt_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
    ckpt_stop_ = true;
  }
  ckpt_thread_cv_.notify_all();
  ckpt_thread_.join();
}

void VerifierServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  accepting_.store(false, std::memory_order_release);
  drain_cv_.notify_all();
}

VerifierServer::StatusSnapshot VerifierServer::GetStatus() const {
  StatusSnapshot s;
  s.traces_received = traces_received_.load(std::memory_order_relaxed);
  s.sessions_completed = sessions_completed_.load(std::memory_order_relaxed);
  s.draining = stopping_.load(std::memory_order_relaxed);
  const uint64_t pushed = pushed_bytes_.load(std::memory_order_relaxed);
  const uint64_t verified =
      online_ != nullptr ? online_->verified_bytes() : pushed;
  s.inflight_bytes = pushed > verified ? pushed - verified : 0;
  s.durable = durable_;
  if (durable_) {
    s.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
    const uint64_t last = last_ckpt_ns_.load(std::memory_order_relaxed);
    s.checkpoint_age_ms = last != 0 ? (obs::NowNs() - last) / 1000000ull : 0;
    s.wal_segments = wal_segments_.load(std::memory_order_relaxed);
    s.wal_next_seq = wal_next_seq_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions_handshaken = sessions_handshaken_;
    for (const auto& sess : sessions_) {
      if (!sess->counted_complete.load(std::memory_order_relaxed)) {
        ++s.sessions_active;
        if (sess->n_streams != 0) {
          s.session_ils.emplace_back(sess->id, sess->stream_ils);
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(diag_mu_);
    s.diagnoses_done = static_cast<uint32_t>(diagnoses_.size());
    s.diagnoses_queued = static_cast<uint32_t>(diag_queue_.size());
  }
  return s;
}

const VerifyReport& VerifierServer::WaitReport() {
  if (online_ == nullptr) return report_;  // Start() never ran
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (drained_) return report_;
    drain_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) ||
             (opts_.expected_sessions > 0 &&
              sessions_completed_.load(std::memory_order_relaxed) >=
                  opts_.expected_sessions);
    });
    if (draining_ || drained_) {
      // Another caller won the race past the wait and owns the teardown
      // below; it joins threads, so a second runner would double-join.
      drain_cv_.wait(lock, [this] { return drained_; });
      return report_;
    }
    draining_ = true;
    stopping_.store(true, std::memory_order_relaxed);
  }
  // Stop accepting and collect the session set (stable: entries are never
  // erased, and no new ones can appear once accepting_ is false). Join
  // before closing the fd — the accept poll rechecks accepting_ within
  // kPollMs, and Close while Accept reads the fd would race.
  accepting_.store(false, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Stop checkpointing before the final drain: from here on the verifier
  // heads for its report, which supersedes any checkpoint.
  StopCheckpointWorker();
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) sessions.push_back(s.get());
  }
  // Sessions still owing stream data (shutdown before they finished, or
  // surplus beyond expected_sessions) would stall the drain forever: force
  // their readers out now; FinishSession closes their streams.
  for (Session* s : sessions) {
    if (!s->counted_complete.load(std::memory_order_relaxed)) {
      s->sock.ShutdownBoth();
      if (s->reader.joinable()) s->reader.join();
    }
  }
  online_->SealClients();
  online_->Close(gate_client_);  // idempotent
  report_ = online_->WaitReport();  // streams remaining violations via OnBug
  // Completed sessions kept their connection for the report; hand each its
  // BYE and release them.
  const uint64_t verified = online_->verified_count();
  for (Session* s : sessions) {
    ByeMsg bye;
    bye.traces_verified = verified;
    bye.violations_sent = s->violations_sent.load(std::memory_order_relaxed);
    SendToSession(*s, EncodeFrame(FrameType::kBye, EncodeBye(bye)));
    s->sock.ShutdownBoth();
  }
  for (Session* s : sessions) {
    if (s->reader.joinable()) s->reader.join();
  }
  // Every violation has been routed through OnBug by now; let the worker
  // drain its queue so diagnoses() is complete and stable.
  StopDiagnoseWorker();
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained_ = true;
  }
  drain_cv_.notify_all();
  return report_;
}

}  // namespace net
}  // namespace leopard
