#ifndef LEOPARD_NET_SERVER_H_
#define LEOPARD_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "diagnose/witness.h"
#include "durable/checkpoint.h"
#include "durable/wal.h"
#include "harness/online_verifier.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/registry.h"
#include "obs/watchdog.h"

namespace leopard {

namespace obs {
class EventJournal;
}  // namespace obs

namespace net {

/// TCP ingestion front-end for online verification: accepts N concurrent
/// client connections speaking the wire protocol (wire.h), decodes their
/// trace batches and pushes them into one OnlineVerifier, so key-sharded
/// parallel verification (--shards=N) works unchanged behind the network
/// boundary. Violations stream back to the session(s) whose transactions
/// are involved.
///
/// Threading: one accept thread plus one reader thread per connection.
/// Sessions register their streams dynamically (OnlineVerifier::AddClient);
/// a "gate" stream held open by the server keeps the pipeline watermark at
/// zero until all `expected_sessions` have completed their handshake, so
/// concurrently-connecting replay clients with overlapping virtual
/// timestamps merge correctly. With expected_sessions == 0 the gate drops
/// immediately and late joiners are admitted at the current dispatch floor
/// (the realtime-clock deployment), which the server enforces per stream.
///
/// Backpressure: a session whose decoded-but-unverified bytes exceed
/// max_inflight_bytes stalls its reader thread (so TCP flow control blocks
/// the producer at the socket) instead of buffering without bound — but
/// only while the verifier is making progress; when dispatch is starved
/// on *another* stream's watermark the frame is admitted anyway, trading
/// bounded overshoot for liveness (net.backpressure_overrides counts it).
class VerifierServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 = kernel-assigned (read back via port()).
    uint16_t port = 0;
    /// Verification shards, forwarded to OnlineVerifier/ShardedLeopard.
    uint32_t n_shards = 1;
    /// Sessions to serve before draining and reporting. 0 = keep serving
    /// until Shutdown() is called.
    uint32_t expected_sessions = 0;
    /// Hard cap on concurrently-registered client streams across all
    /// sessions (a handshake requesting more is rejected).
    uint32_t max_streams = 256;
    /// Close a session that sends nothing for this long.
    uint64_t idle_timeout_ms = 30000;
    /// Backpressure threshold on decoded-but-unverified trace bytes.
    size_t max_inflight_bytes = 64u << 20;
    /// Give up on a backpressure stall with no verifier progress after this
    /// long and admit the frame (watermark starvation, see class comment).
    uint64_t stall_override_ms = 500;
    /// Per-frame payload limit handed to the decoder.
    size_t max_frame_bytes = kMaxFramePayload;
    /// Optional instrumentation: net.* counters/gauges/histograms (see
    /// docs/OBSERVABILITY.md) plus everything OnlineVerifier exports.
    obs::MetricsRegistry* metrics = nullptr;
    uint64_t progress_interval_ms = 0;
    bool print_progress = false;
    /// Optional state-transition journal (session open/close, backpressure
    /// engage/release, violations, diagnosis lifecycle) shared with the
    /// verification engine.
    obs::EventJournal* events = nullptr;
    /// Optional heartbeat watchdog: reader threads register as
    /// "net.session<id>.reader", the diagnosis worker as "diagnose.worker",
    /// the engine threads via OnlineVerifier/ShardedLeopard.
    obs::Watchdog* watchdog = nullptr;
    /// Record every received trace and, when a violation surfaces, run the
    /// delta-debugging minimizer (src/diagnose) on a background worker —
    /// never on a reader or the dispatcher thread. Results via diagnoses().
    bool diagnose = false;
    /// When diagnosing, also write repro artifacts (diagnosis.json,
    /// conflict.dot, minimized trace) under `<dir>/diag_<n>`. Empty = keep
    /// the Diagnosis records in memory only.
    std::string diagnose_out_dir;
    /// Verifier re-runs the minimizer may spend per diagnosis.
    uint64_t diagnose_max_oracle_runs = 512;
    /// Distinct (bug type, key) diagnoses to run before ignoring further
    /// violations (bounds worker time on pathological histories).
    uint32_t max_diagnoses = 4;
    /// Durable state directory (src/durable). Non-empty enables the
    /// write-ahead trace log + periodic checkpoints: every accepted batch
    /// is logged before it reaches the verifier, and on restart the server
    /// loads the newest checkpoint, replays the log past its cut and
    /// resumes with identical verdicts. Empty = in-memory only (a crash
    /// loses the run), exactly the pre-durability behavior.
    std::string state_dir;
    /// Checkpoint cadence; 0 disables the periodic checkpointer (WAL-only
    /// durability — recovery then replays the whole log).
    uint64_t checkpoint_interval_ms = 10000;
    /// Also checkpoint after this many newly accepted traces (0 = only the
    /// timer). Whichever fires first wins; the other resets.
    uint64_t checkpoint_every_traces = 0;
    /// WAL segment size before seal + rotate.
    size_t wal_segment_bytes = 64u << 20;
  };

  VerifierServer(const VerifierConfig& config, const Options& options);
  ~VerifierServer();
  VerifierServer(const VerifierServer&) = delete;
  VerifierServer& operator=(const VerifierServer&) = delete;

  /// Binds the listener and starts accepting. Call once.
  Status Start();

  /// Port actually bound (valid after Start()).
  uint16_t port() const { return port_; }

  /// Blocks until `expected_sessions` sessions have ended (or Shutdown()
  /// was called), drains the verifier, streams the remaining violations
  /// and BYEs to connected sessions, and returns the aggregated report.
  /// Idempotent.
  const VerifyReport& WaitReport();

  /// Stops accepting and unblocks WaitReport() even before
  /// expected_sessions completed. Safe from any thread (including a signal
  /// watchdog). Streams still open are force-closed at their current point.
  void Shutdown();

  /// Traces accepted from the network so far.
  uint64_t traces_received() const {
    return traces_received_.load(std::memory_order_relaxed);
  }
  /// Sessions that finished (cleanly or by disconnect).
  uint32_t sessions_completed() const {
    return sessions_completed_.load(std::memory_order_relaxed);
  }

  /// Diagnoses produced by the background minimizer (Options::diagnose).
  /// Stable only after WaitReport() returned — the worker is joined there.
  const std::vector<diagnose::Diagnosis>& diagnoses() const {
    return diagnoses_;
  }

  /// Point-in-time operational snapshot for /statusz. Thread-safe; cheap
  /// enough to call per scrape.
  struct StatusSnapshot {
    uint32_t sessions_active = 0;      // accepted, not yet finished
    uint32_t sessions_handshaken = 0;  // completed the HELLO exchange
    uint32_t sessions_completed = 0;
    uint64_t traces_received = 0;
    uint64_t inflight_bytes = 0;  // decoded but not yet verified
    uint32_t diagnoses_queued = 0;
    uint32_t diagnoses_done = 0;
    bool draining = false;
    /// Per-session declared isolation levels (v4 HELLO tail): one entry per
    /// live handshaken session, session id -> per-stream level list.
    /// Sessions that never declared levels report all-SERIALIZABLE.
    std::vector<std::pair<uint32_t, std::vector<IsolationLevel>>> session_ils;
    // Durability (all zero without Options::state_dir).
    bool durable = false;
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_age_ms = 0;  // since the last checkpoint; 0 = never
    uint64_t wal_segments = 0;
    uint64_t wal_next_seq = 0;
  };
  StatusSnapshot GetStatus() const;

  /// Takes a checkpoint now (durable mode only): rotates the WAL so the cut
  /// lands on a segment boundary, serializes the full verifier state at a
  /// quiescent point and garbage-collects fully-covered WAL segments.
  /// Also what the periodic checkpointer calls. Safe from any thread.
  Status TriggerCheckpoint();

  /// Recovery outcome of Start() (durable mode; zeros on a fresh dir).
  struct RecoveryInfo {
    bool resumed = false;           // a checkpoint or WAL entries were found
    uint64_t checkpoint_cut = 0;    // 0 = no checkpoint, full-log replay
    uint64_t entries_replayed = 0;  // WAL entries applied past the cut
    uint64_t entries_skipped = 0;   // WAL entries already in the checkpoint
    uint64_t torn_bytes = 0;        // truncated torn tail, if any
  };
  const RecoveryInfo& recovery() const { return recovery_; }

 private:
  struct Session {
    uint32_t id = 0;
    Socket sock;
    std::thread reader;
    std::mutex write_mu;          // serializes acks/violations/bye/error
    uint32_t n_streams = 0;       // 0 until the handshake succeeded
    uint32_t base_client = 0;     // first OnlineVerifier client id
    /// Negotiated wire version: min(client, server). Selects the violation
    /// payload layout this session receives.
    uint32_t version = kWireVersion;
    /// Declared isolation level per stream (v4 HELLO tail), one entry per
    /// stream once the handshake succeeded; SERIALIZABLE when undeclared.
    /// Applied weakest-wins against each record's own tag in HandleBatch.
    /// Written once under mu_ during the handshake, read under mu_ after.
    std::vector<IsolationLevel> stream_ils;
    std::vector<Timestamp> floor;          // admission floor per stream
    std::vector<Timestamp> last_ts;        // per-stream order enforcement
    std::vector<uint8_t> stream_closed;    // reader thread only
    std::atomic<uint64_t> traces_received{0};
    std::atomic<uint64_t> last_frame_ns{0};
    std::atomic<uint32_t> violations_sent{0};
    /// v5: the client declared the session resumable — an abrupt disconnect
    /// parks its stream state (see parked_) instead of retiring the ids.
    bool resumable = false;
    /// Session counted towards sessions_completed (exactly once).
    std::atomic<bool> counted_complete{false};
    /// Write side dead (error sent or peer gone); skip further sends.
    std::atomic<bool> defunct{false};
    /// Reader thread's heartbeat slot (nullptr without Options::watchdog).
    obs::Watchdog::Slot* wd_slot = nullptr;
  };

  void AcceptLoop();
  void ReaderLoop(Session& session);
  /// Dispatches one decoded frame; returns false to end the session.
  bool HandleFrame(Session& session, Frame frame);
  bool HandleHello(Session& session, const Frame& frame);
  bool HandleBatch(Session& session, const Frame& frame);
  /// Sends kError and marks the session defunct.
  void FailSession(Session& session, const std::string& message);
  /// Closes every still-open stream of the session and, if it completed
  /// the handshake, counts the session as finished.
  void FinishSession(Session& session);
  void SendToSession(Session& session, const std::string& frame);
  /// Routes one bug to the sessions owning its transactions (dispatcher
  /// thread, via OnlineVerifier's on_bug).
  void OnBug(const BugDescriptor& bug);
  /// Blocks while the in-flight byte budget is exhausted; see class
  /// comment for the starvation escape. Beats the session's watchdog slot
  /// while stalled (a stalled reader is flow control, not a wedge).
  void Backpressure(Session& session, size_t incoming_bytes);
  /// Background diagnosis worker: pops queued violations and delta-debugs
  /// the recorded history (Options::diagnose).
  void DiagnoseLoop();
  /// Joins the diagnosis worker after draining its queue.
  void StopDiagnoseWorker();
  /// Durable mode (Options::state_dir). RecoverState rebuilds the verifier
  /// from the newest loadable checkpoint + WAL replay and opens the log for
  /// appending; called from Start() before any session is accepted.
  Status RecoverState(const OnlineVerifier::Options& vo);
  /// Appends a client registration to the WAL (no-op when not durable).
  /// Takes durable_mu_ — never call with mu_ held.
  void WalAddClient(ClientId client);
  /// The checkpoint implementation behind TriggerCheckpoint().
  Status DoCheckpoint();
  /// Periodic checkpointer thread (durable mode with a nonzero interval).
  void CheckpointLoop();
  void StopCheckpointWorker();

  VerifierConfig config_;
  Options opts_;
  obs::MetricsRegistry* metrics_;  // not owned; may be nullptr

  Listener listener_;
  uint16_t port_ = 0;
  std::unique_ptr<OnlineVerifier> online_;
  ClientId gate_client_ = 0;

  mutable std::mutex mu_;  // sessions_, routing maps, allocation, lifecycle
  std::condition_variable drain_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  /// Violation routing, split so it survives a restart: txn -> verifier
  /// client id is durable (checkpointed and rebuilt by WAL replay), while
  /// client id -> live session is ephemeral and rebuilt per handshake. A
  /// restored txn whose session died with the old process simply has no
  /// client_session_ entry (counted net.violations_unroutable).
  std::unordered_map<TxnId, ClientId> txn_client_;
  std::unordered_map<ClientId, Session*> client_session_;
  /// Stream state parked by an abrupt disconnect of a *resumable* session
  /// (v5), keyed by base client id. A later HELLO with has_resume re-admits
  /// the same verifier client ids at floors that preserve Theorem 1
  /// (OnlineVerifier::ReopenClient). In-process only: durable recovery
  /// closes all restored clients, so a restart empties this map and resume
  /// attempts fall back to fresh allocation. Guarded by mu_.
  struct ParkedSession {
    uint32_t n_streams = 0;
    std::vector<IsolationLevel> stream_ils;
    std::vector<Timestamp> last_ts;
    std::vector<uint8_t> stream_closed;
  };
  std::unordered_map<uint32_t, ParkedSession> parked_;
  uint32_t next_stream_slot_ = 0;  // streams allocated (excluding the gate)
  uint32_t sessions_handshaken_ = 0;
  bool gate_closed_ = false;
  bool drained_ = false;
  /// True while one WaitReport() caller runs the teardown sequence. Further
  /// callers (the drain-thread idiom has at least two) park on drain_cv_
  /// until drained_ — the teardown joins threads and must run exactly once.
  bool draining_ = false;
  std::atomic<bool> stopping_{false};  // set by Shutdown(), any thread
  std::atomic<bool> accepting_{false};
  std::atomic<uint64_t> traces_received_{0};
  std::atomic<uint64_t> pushed_bytes_{0};
  std::atomic<uint32_t> sessions_completed_{0};
  std::thread accept_thread_;
  VerifyReport report_;

  // Durability (Options::state_dir). durable_mu_ orders WAL appends against
  // checkpoint cuts: HandleBatch holds it across {append, sync, push}, the
  // checkpointer across {rotate, read cut, serialize}. Lock order is
  // durable_mu_ -> mu_; no path may take durable_mu_ while holding mu_.
  bool durable_ = false;  // set once in Start(), before any thread
  mutable std::mutex durable_mu_;
  durable::WalWriter wal_;             // guarded by durable_mu_
  durable::CheckpointStore ckpts_;     // written under durable_mu_
  RecoveryInfo recovery_;              // written once in Start()
  uint64_t last_ckpt_cut_ = 0;         // guarded by durable_mu_
  std::atomic<uint64_t> last_ckpt_ns_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> wal_segments_{0};  // mirror for /statusz
  std::atomic<uint64_t> wal_next_seq_{0};  // mirror for /statusz
  std::atomic<uint64_t> traces_at_last_ckpt_{0};
  std::mutex ckpt_thread_mu_;
  std::condition_variable ckpt_thread_cv_;
  bool ckpt_stop_ = false;  // guarded by ckpt_thread_mu_
  std::thread ckpt_thread_;

  // Background diagnosis (Options::diagnose).
  mutable std::mutex diag_mu_;  // recorded_, diag_queue_, diagnoses_, diag_stop_
  std::condition_variable diag_cv_;
  std::vector<Trace> recorded_;               // every accepted trace
  std::deque<BugDescriptor> diag_queue_;      // violations awaiting a worker
  std::vector<diagnose::Diagnosis> diagnoses_;
  uint32_t diagnoses_enqueued_ = 0;
  bool diag_stop_ = false;
  std::thread diag_thread_;

  // Cached metric handles (nullptr when metrics_ == nullptr).
  obs::Counter* m_connections_ = nullptr;
  obs::Counter* m_sessions_done_ = nullptr;
  obs::Counter* m_disconnects_ = nullptr;
  obs::Counter* m_frames_in_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_traces_in_ = nullptr;
  obs::Counter* m_decode_errors_ = nullptr;
  obs::Counter* m_stalls_ = nullptr;
  obs::Counter* m_stall_ns_ = nullptr;
  obs::Counter* m_overrides_ = nullptr;
  obs::Counter* m_violations_sent_ = nullptr;
  obs::Counter* m_violations_unroutable_ = nullptr;
  obs::Counter* m_report_send_errors_ = nullptr;
  obs::Counter* m_clock_skew_ = nullptr;
  obs::Counter* m_wal_appends_ = nullptr;
  obs::Counter* m_wal_bytes_ = nullptr;
  obs::Counter* m_wal_errors_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_checkpoint_errors_ = nullptr;
  obs::Gauge* m_wal_segments_g_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Histogram* m_report_latency_ = nullptr;
  obs::Histogram* m_stage_ingest_ = nullptr;  // client stamp -> server read
  obs::Histogram* m_stage_report_ = nullptr;  // server read -> bug reported
  obs::Histogram* m_ckpt_ns_ = nullptr;       // checkpoint wall time
};

}  // namespace net
}  // namespace leopard

#endif  // LEOPARD_NET_SERVER_H_
