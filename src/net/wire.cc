#include "net/wire.h"

#include <cstring>

#include "trace/trace_io.h"

namespace leopard {
namespace net {

namespace {

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return true;
  }
  bool GetU64(uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return true;
  }
  bool GetString(std::string& out, uint32_t len) {
    if (static_cast<uint64_t>(len) > bytes_.size() - pos_) return false;
    out.assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }
  bool Done() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloAck:
      return "HELLO_ACK";
    case FrameType::kBatch:
      return "BATCH";
    case FrameType::kBatchAck:
      return "BATCH_ACK";
    case FrameType::kCloseStream:
      return "CLOSE_STREAM";
    case FrameType::kViolation:
      return "VIOLATION";
    case FrameType::kBye:
      return "BYE";
    case FrameType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU8(out, static_cast<uint8_t>(type));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

Status FrameDecoder::Poll(Frame& out) {
  if (poisoned_) return Status::InvalidArgument("frame stream corrupt");
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    return Status::Busy("need more bytes");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  const uint8_t type = static_cast<uint8_t>(buf_[pos_ + 4]);
  if (len > max_payload_) {
    poisoned_ = true;
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(len) + " exceeds limit");
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    poisoned_ = true;
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + len) {
    return Status::Busy("need more bytes");
  }
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return Status::Ok();
}

std::string EncodeHello(const HelloMsg& m) {
  std::string out;
  PutU32(out, m.version);
  PutU32(out, m.n_streams);
  const bool v5_tail = m.resumable || m.has_resume;
  if (!m.stream_ils.empty() || v5_tail) {
    // v4 mixed-isolation tail. Callers must leave stream_ils empty unless
    // they require a v4 server: pre-v4 decoders reject any HELLO tail.
    // The v5 resume tail always rides behind an isolation count (possibly
    // zero) so the decoder can tell the two tails apart by length.
    PutU32(out, static_cast<uint32_t>(m.stream_ils.size()));
    for (IsolationLevel il : m.stream_ils) {
      PutU8(out, static_cast<uint8_t>(il));
    }
  }
  if (v5_tail) {
    uint8_t flags = 0;
    if (m.resumable) flags |= 0x1;
    if (m.has_resume) flags |= 0x2;
    PutU8(out, flags);
    PutU32(out, m.resume_base);
  }
  return out;
}

StatusOr<HelloMsg> DecodeHello(const std::string& payload) {
  Reader r(payload);
  HelloMsg m;
  if (!r.GetU32(m.version) || !r.GetU32(m.n_streams)) {
    return Malformed("HELLO");
  }
  if (r.Done()) return m;  // no tail: every stream defaults to SERIALIZABLE
  // v4 mixed-isolation tail, self-describing by the remaining length.
  uint32_t n_ils = 0;
  if (!r.GetU32(n_ils)) return Malformed("HELLO");
  if (n_ils > m.n_streams || n_ils > r.remaining()) {
    return Status::InvalidArgument("HELLO isolation tail exceeds streams");
  }
  m.stream_ils.reserve(n_ils);
  for (uint32_t i = 0; i < n_ils; ++i) {
    uint8_t il = 0;
    if (!r.GetU8(il)) return Malformed("HELLO");
    if (il > static_cast<uint8_t>(IsolationLevel::kSerializable)) {
      return Status::InvalidArgument("HELLO invalid isolation level");
    }
    m.stream_ils.push_back(static_cast<IsolationLevel>(il));
  }
  if (r.Done()) return m;
  // v5 resume tail: a fixed 5 bytes (u8 flags, u32 resume_base) behind the
  // isolation tail. Anything else trailing is malformed.
  if (r.remaining() != 5) return Malformed("HELLO");
  uint8_t flags = 0;
  uint32_t resume_base = 0;
  if (!r.GetU8(flags) || !r.GetU32(resume_base) || !r.Done()) {
    return Malformed("HELLO");
  }
  if ((flags & ~uint8_t{0x3}) != 0) {
    return Status::InvalidArgument("HELLO unknown resume flags");
  }
  m.resumable = (flags & 0x1) != 0;
  m.has_resume = (flags & 0x2) != 0;
  m.resume_base = resume_base;
  if (!m.resumable && !m.has_resume) {
    return Status::InvalidArgument("HELLO empty resume tail");
  }
  return m;
}

std::string EncodeHelloAck(const HelloAckMsg& m) {
  std::string out;
  PutU32(out, m.version);
  PutU32(out, m.base_client);
  if (!m.resume_floors.empty()) {
    // v5 resume tail; only emitted on a successful resume, which only a v5
    // client can have requested — older decoders never see it.
    PutU32(out, static_cast<uint32_t>(m.resume_floors.size()));
    for (Timestamp floor : m.resume_floors) PutU64(out, floor);
  }
  return out;
}

StatusOr<HelloAckMsg> DecodeHelloAck(const std::string& payload) {
  Reader r(payload);
  HelloAckMsg m;
  if (!r.GetU32(m.version) || !r.GetU32(m.base_client)) {
    return Malformed("HELLO_ACK");
  }
  if (r.Done()) return m;
  uint32_t n_floors = 0;
  if (!r.GetU32(n_floors)) return Malformed("HELLO_ACK");
  if (static_cast<uint64_t>(n_floors) * 8 != r.remaining()) {
    return Malformed("HELLO_ACK");
  }
  m.resume_floors.reserve(n_floors);
  for (uint32_t i = 0; i < n_floors; ++i) {
    uint64_t floor = 0;
    if (!r.GetU64(floor)) return Malformed("HELLO_ACK");
    m.resume_floors.push_back(floor);
  }
  return m;
}

std::string EncodeBatch(uint32_t stream, const std::vector<Trace>& traces,
                        uint64_t ingest_ns) {
  std::string out;
  PutU32(out, stream);
  PutU32(out, static_cast<uint32_t>(traces.size()));
  for (const Trace& t : traces) AppendTraceRecord(out, t);
  if (ingest_ns != 0) PutU64(out, ingest_ns);  // v3 ingest-timestamp tail
  return out;
}

StatusOr<BatchMsg> DecodeBatch(const std::string& payload) {
  Reader r(payload);
  BatchMsg m;
  uint32_t count = 0;
  if (!r.GetU32(m.stream) || !r.GetU32(count)) return Malformed("BATCH");
  // Each record is at least 54 bytes (empty sets); reject counts the
  // payload can't hold before reserving.
  if (static_cast<uint64_t>(count) * 54 > r.remaining()) {
    return Status::InvalidArgument("BATCH trace count exceeds payload");
  }
  m.traces.reserve(count);
  size_t pos = r.pos();
  for (uint32_t i = 0; i < count; ++i) {
    Trace t;
    Status s = DecodeTraceRecord(payload, pos, t);
    if (!s.ok()) return s;
    m.traces.push_back(std::move(t));
  }
  if (pos != payload.size()) {
    // v3 ingest-timestamp tail: exactly 8 trailing bytes, self-describing
    // by length (v1/v2 batches end at the last trace record).
    if (payload.size() - pos != 8) {
      return Status::InvalidArgument("trailing bytes after BATCH traces");
    }
    for (int i = 0; i < 8; ++i) {
      m.ingest_ns |= static_cast<uint64_t>(static_cast<uint8_t>(payload[pos]))
                     << (8 * i);
      ++pos;
    }
  }
  return m;
}

std::string EncodeBatchAck(const BatchAckMsg& m) {
  std::string out;
  PutU64(out, m.traces_received);
  return out;
}

StatusOr<BatchAckMsg> DecodeBatchAck(const std::string& payload) {
  Reader r(payload);
  BatchAckMsg m;
  if (!r.GetU64(m.traces_received) || !r.Done()) {
    return Malformed("BATCH_ACK");
  }
  return m;
}

std::string EncodeCloseStream(const CloseStreamMsg& m) {
  std::string out;
  PutU32(out, m.stream);
  return out;
}

StatusOr<CloseStreamMsg> DecodeCloseStream(const std::string& payload) {
  Reader r(payload);
  CloseStreamMsg m;
  if (!r.GetU32(m.stream) || !r.Done()) return Malformed("CLOSE_STREAM");
  return m;
}

std::string EncodeViolation(const BugDescriptor& bug, uint32_t version) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(bug.type));
  PutU64(out, bug.key);
  PutU32(out, static_cast<uint32_t>(bug.txns.size()));
  for (TxnId id : bug.txns) PutU64(out, id);
  PutU32(out, static_cast<uint32_t>(bug.detail.size()));
  out.append(bug.detail);
  if (version < 2) return out;  // legacy sessions get the v1 payload
  // v2 structured-witness extension: anchor ts, ops, edges.
  PutU64(out, bug.ts);
  PutU32(out, static_cast<uint32_t>(bug.ops.size()));
  for (const BugOp& op : bug.ops) {
    PutU64(out, op.txn);
    PutU32(out, static_cast<uint32_t>(op.role.size()));
    out.append(op.role);
    PutU64(out, op.key);
    PutU64(out, op.value);
    PutU64(out, op.interval.bef);
    PutU64(out, op.interval.aft);
    PutU8(out, static_cast<uint8_t>((op.committed ? 1 : 0) |
                                    (op.has_value ? 2 : 0)));
  }
  PutU32(out, static_cast<uint32_t>(bug.edges.size()));
  for (const BugEdge& e : bug.edges) {
    PutU64(out, e.from);
    PutU64(out, e.to);
    PutU8(out, static_cast<uint8_t>(e.type));
  }
  return out;
}

StatusOr<ViolationMsg> DecodeViolation(const std::string& payload) {
  Reader r(payload);
  ViolationMsg m;
  uint8_t type = 0;
  uint32_t n = 0;
  if (!r.GetU8(type) || !r.GetU64(m.bug.key) || !r.GetU32(n)) {
    return Malformed("VIOLATION");
  }
  if (type > static_cast<uint8_t>(BugType::kScViolation)) {
    return Status::InvalidArgument("invalid VIOLATION bug type");
  }
  m.bug.type = static_cast<BugType>(type);
  if (static_cast<uint64_t>(n) * 8 > r.remaining()) {
    return Status::InvalidArgument("VIOLATION txn count exceeds payload");
  }
  m.bug.txns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TxnId id = 0;
    if (!r.GetU64(id)) return Malformed("VIOLATION");
    m.bug.txns.push_back(id);
  }
  uint32_t detail_len = 0;
  if (!r.GetU32(detail_len) || !r.GetString(m.bug.detail, detail_len)) {
    return Malformed("VIOLATION");
  }
  if (r.Done()) return m;  // v1 payload: no structured witness
  // v2 structured-witness extension.
  uint32_t n_ops = 0;
  if (!r.GetU64(m.bug.ts) || !r.GetU32(n_ops)) return Malformed("VIOLATION");
  // Each op is at least 45 bytes (empty role).
  if (static_cast<uint64_t>(n_ops) * 45 > r.remaining()) {
    return Status::InvalidArgument("VIOLATION op count exceeds payload");
  }
  m.bug.ops.reserve(n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    BugOp op;
    uint32_t role_len = 0;
    uint8_t flags = 0;
    if (!r.GetU64(op.txn) || !r.GetU32(role_len) ||
        !r.GetString(op.role, role_len) || !r.GetU64(op.key) ||
        !r.GetU64(op.value) || !r.GetU64(op.interval.bef) ||
        !r.GetU64(op.interval.aft) || !r.GetU8(flags)) {
      return Malformed("VIOLATION");
    }
    op.committed = (flags & 1) != 0;
    op.has_value = (flags & 2) != 0;
    m.bug.ops.push_back(std::move(op));
  }
  uint32_t n_edges = 0;
  if (!r.GetU32(n_edges)) return Malformed("VIOLATION");
  if (static_cast<uint64_t>(n_edges) * 17 > r.remaining()) {
    return Status::InvalidArgument("VIOLATION edge count exceeds payload");
  }
  m.bug.edges.reserve(n_edges);
  for (uint32_t i = 0; i < n_edges; ++i) {
    BugEdge e;
    uint8_t dep = 0;
    if (!r.GetU64(e.from) || !r.GetU64(e.to) || !r.GetU8(dep)) {
      return Malformed("VIOLATION");
    }
    if (dep > static_cast<uint8_t>(DepType::kRw)) {
      return Status::InvalidArgument("invalid VIOLATION edge type");
    }
    e.type = static_cast<DepType>(dep);
    m.bug.edges.push_back(e);
  }
  if (!r.Done()) return Malformed("VIOLATION");
  return m;
}

std::string EncodeBye(const ByeMsg& m) {
  std::string out;
  PutU64(out, m.traces_verified);
  PutU32(out, m.violations_sent);
  return out;
}

StatusOr<ByeMsg> DecodeBye(const std::string& payload) {
  Reader r(payload);
  ByeMsg m;
  if (!r.GetU64(m.traces_verified) || !r.GetU32(m.violations_sent) ||
      !r.Done()) {
    return Malformed("BYE");
  }
  return m;
}

std::string EncodeError(std::string_view message) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(message.size()));
  out.append(message);
  return out;
}

StatusOr<std::string> DecodeError(const std::string& payload) {
  Reader r(payload);
  uint32_t len = 0;
  std::string msg;
  if (!r.GetU32(len) || !r.GetString(msg, len) || !r.Done()) {
    return Malformed("ERROR");
  }
  return msg;
}

}  // namespace net
}  // namespace leopard
