#include "pipeline/two_level_pipeline.h"

#include <algorithm>
#include <cassert>

#include "obs/span.h"
#include "trace/trace_io.h"

namespace leopard {

TwoLevelPipeline::TwoLevelPipeline(uint32_t n_clients, Options options)
    : options_(options),
      locals_(n_clients),
      closed_(n_clients, false),
      last_pushed_(n_clients, 0) {}

void TwoLevelPipeline::AttachMetrics(obs::MetricsRegistry* registry,
                                     uint32_t span_sample_every) {
  span_sample_every_ = std::max(span_sample_every, 1u);
  span_tick_ = 0;
  if (registry == nullptr) {
    dispatch_ns_ = nullptr;
    dispatched_ctr_ = nullptr;
    depth_gauge_ = nullptr;
    return;
  }
  dispatch_ns_ = registry->histogram("pipeline.dispatch_ns");
  dispatched_ctr_ = registry->counter("pipeline.dispatched");
  depth_gauge_ = registry->gauge("pipeline.queue_depth");
  depth_gauge_->Set(static_cast<int64_t>(buffered_traces_));
}

void TwoLevelPipeline::NoteBuffered() {
  stats_.max_buffered = std::max(stats_.max_buffered, buffered_traces_);
  stats_.max_buffered_bytes =
      std::max(stats_.max_buffered_bytes, buffered_bytes_);
  stats_.max_global_heap = std::max(stats_.max_global_heap, global_.size());
  stats_.max_global_bytes = std::max(stats_.max_global_bytes, heap_bytes_);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(buffered_traces_));
  }
}

void TwoLevelPipeline::Push(ClientId client, Trace trace) {
  assert(client < locals_.size());
  assert(!closed_[client]);
  assert(trace.ts_bef() >= last_pushed_[client] &&
         "per-client ts_bef order (or mid-run admission floor) violated");
  ++buffered_traces_;
  buffered_bytes_ += trace.ApproxBytes();
  last_pushed_[client] = trace.ts_bef();
  locals_[client].push_back(std::move(trace));
  NoteBuffered();
}

void TwoLevelPipeline::Close(ClientId client) {
  assert(client < locals_.size());
  closed_[client] = true;
}

ClientId TwoLevelPipeline::AddClient() {
  ClientId id = static_cast<ClientId>(locals_.size());
  locals_.emplace_back();
  closed_.push_back(false);
  // Seed the new client's "last push" with the dispatch floor: an empty
  // buffer then holds the watermark exactly at the oldest trace the client
  // may still legally produce, so joining neither rewinds dispatch order
  // nor lets it run ahead of the newcomer.
  last_pushed_.push_back(max_dispatched_);
  return id;
}

Timestamp TwoLevelPipeline::Reopen(ClientId client) {
  assert(client < locals_.size());
  assert(closed_[client]);
  closed_[client] = false;
  // Same admission rule as AddClient, except the stream keeps its history:
  // a reconnecting client may not push below what it already pushed, nor
  // below what dispatch handed out while it was away.
  last_pushed_[client] = std::max(last_pushed_[client], max_dispatched_);
  return last_pushed_[client];
}

void TwoLevelPipeline::UpdateWatermark() {
  Timestamp wm = kMaxTimestamp;
  for (size_t i = 0; i < locals_.size(); ++i) {
    if (!locals_[i].empty()) {
      wm = std::min(wm, locals_[i].front().ts_bef());
    } else if (!closed_[i]) {
      // Open and drained: the client's future traces can only carry
      // ts_bef >= its last push (0 if it never produced anything yet).
      wm = std::min(wm, last_pushed_[i]);
    }
  }
  watermark_ = wm;
}

bool TwoLevelPipeline::FetchRound() {
  if (!options_.optimized) {
    // "w/o Opt": fetch every local buffer wholesale.
    bool fetched = false;
    for (auto& local : locals_) {
      while (!local.empty()) {
        heap_bytes_ += local.front().ApproxBytes();
        global_.push(std::move(local.front()));
        local.pop_front();
        fetched = true;
      }
    }
    if (fetched) ++stats_.rounds;
    return fetched;
  }
  // Optimized: fetch a batch from the local buffer with the smallest
  // timestamp, which is the buffer currently pinning the watermark.
  size_t best = locals_.size();
  for (size_t i = 0; i < locals_.size(); ++i) {
    if (locals_[i].empty()) continue;
    if (best == locals_.size() ||
        locals_[i].front().ts_bef() < locals_[best].front().ts_bef()) {
      best = i;
    }
  }
  if (best == locals_.size()) return false;  // nothing to fetch
  ++stats_.rounds;
  auto& local = locals_[best];
  for (size_t n = 0; n < options_.fetch_batch && !local.empty(); ++n) {
    heap_bytes_ += local.front().ApproxBytes();
    global_.push(std::move(local.front()));
    local.pop_front();
  }
  return true;
}

std::optional<Trace> TwoLevelPipeline::Dispatch() {
  obs::Histogram* sampled = nullptr;
  if (dispatch_ns_ != nullptr && ++span_tick_ >= span_sample_every_) {
    span_tick_ = 0;
    sampled = dispatch_ns_;
  }
  obs::ScopedSpan span(sampled);
  while (true) {
    UpdateWatermark();
    if (!global_.empty() && global_.top().ts_bef() <= watermark_) {
      // The heap's top is never inspected again after pop() — move the trace
      // out instead of deep-copying its access vectors. ApproxBytes() tracks
      // vector *capacity*, which the move preserves, so the bytes removed
      // here are exactly the bytes added at push/fetch time; an underflow
      // means the accounting itself is broken and must fail loudly.
      Trace t = std::move(const_cast<Trace&>(global_.top()));
      global_.pop();
      --buffered_traces_;
      const size_t bytes = t.ApproxBytes();
      assert(buffered_bytes_ >= bytes && "pipeline byte accounting underflow");
      assert(heap_bytes_ >= bytes && "pipeline heap-byte accounting underflow");
      buffered_bytes_ -= bytes;
      heap_bytes_ -= bytes;
      max_dispatched_ = t.ts_bef();  // Dispatch order is non-decreasing.
      ++stats_.dispatched;
      if (dispatched_ctr_ != nullptr) {
        dispatched_ctr_->Inc();
        depth_gauge_->Set(static_cast<int64_t>(buffered_traces_));
      }
      return t;
    }
    // Cannot dispatch: pull more input into the heap, or report starvation
    // when every local buffer is already drained. Starved calls are not
    // dispatches — keep them out of the latency histogram.
    if (!FetchRound()) {
      span.Cancel();
      return std::nullopt;
    }
    NoteBuffered();
  }
}

void TwoLevelPipeline::SaveState(StateWriter& w) const {
  w.PutU64(watermark_);
  w.PutU64(max_dispatched_);
  w.PutU64(stats_.dispatched);
  w.PutU64(stats_.rounds);
  w.PutU64(stats_.max_global_heap);
  w.PutU64(stats_.max_global_bytes);
  w.PutU64(stats_.max_buffered);
  w.PutU64(stats_.max_buffered_bytes);
  w.PutU32(static_cast<uint32_t>(locals_.size()));
  for (size_t i = 0; i < locals_.size(); ++i) {
    w.PutBool(closed_[i]);
    w.PutU64(last_pushed_[i]);
    w.PutU32(static_cast<uint32_t>(locals_[i].size()));
    for (const Trace& t : locals_[i]) AppendTraceRecord(w.raw(), t);
  }
  auto heap = global_;  // priority_queue hides its container: drain a copy
  w.PutU32(static_cast<uint32_t>(heap.size()));
  while (!heap.empty()) {
    AppendTraceRecord(w.raw(), heap.top());
    heap.pop();
  }
}

Status TwoLevelPipeline::LoadState(StateReader& r) {
  Status s;
  if (!(s = r.GetU64(watermark_)).ok()) return s;
  if (!(s = r.GetU64(max_dispatched_)).ok()) return s;
  uint64_t u = 0;
  for (uint64_t* f :
       {&stats_.dispatched, &stats_.rounds}) {
    if (!(s = r.GetU64(*f)).ok()) return s;
  }
  for (size_t* f : {&stats_.max_global_heap, &stats_.max_global_bytes,
                    &stats_.max_buffered, &stats_.max_buffered_bytes}) {
    if (!(s = r.GetU64(u)).ok()) return s;
    *f = static_cast<size_t>(u);
  }
  uint32_t n_clients = 0;
  if (!(s = r.GetU32(n_clients)).ok()) return s;
  if (!r.CountFits(n_clients, 1 + 8 + 4)) {
    return Status::InvalidArgument("pipeline state: absurd client count");
  }
  locals_.assign(n_clients, {});
  closed_.assign(n_clients, false);
  last_pushed_.assign(n_clients, 0);
  while (!global_.empty()) global_.pop();
  buffered_traces_ = 0;
  buffered_bytes_ = 0;
  heap_bytes_ = 0;
  for (uint32_t i = 0; i < n_clients; ++i) {
    bool closed = false;
    if (!(s = r.GetBool(closed)).ok()) return s;
    closed_[i] = closed;
    if (!(s = r.GetU64(last_pushed_[i])).ok()) return s;
    uint32_t n = 0;
    if (!(s = r.GetU32(n)).ok()) return s;
    for (uint32_t j = 0; j < n; ++j) {
      Trace t;
      size_t pos = r.pos();
      if (!(s = DecodeTraceRecord(r.raw(), pos, t)).ok()) return s;
      r.set_pos(pos);
      ++buffered_traces_;
      buffered_bytes_ += t.ApproxBytes();
      locals_[i].push_back(std::move(t));
    }
  }
  uint32_t n_heap = 0;
  if (!(s = r.GetU32(n_heap)).ok()) return s;
  for (uint32_t j = 0; j < n_heap; ++j) {
    Trace t;
    size_t pos = r.pos();
    if (!(s = DecodeTraceRecord(r.raw(), pos, t)).ok()) return s;
    r.set_pos(pos);
    ++buffered_traces_;
    const size_t bytes = t.ApproxBytes();
    buffered_bytes_ += bytes;
    heap_bytes_ += bytes;
    global_.push(std::move(t));
  }
  NoteBuffered();
  return Status::Ok();
}

bool TwoLevelPipeline::Exhausted() const {
  for (size_t i = 0; i < locals_.size(); ++i) {
    if (!closed_[i] || !locals_[i].empty()) return false;
  }
  return global_.empty();
}

void NaiveSorter::Push(ClientId client, Trace trace) {
  (void)client;
  buffered_bytes_ += trace.ApproxBytes();
  heap_.push(std::move(trace));
  max_buffered_ = std::max(max_buffered_, heap_.size());
  max_buffered_bytes_ = std::max(max_buffered_bytes_, buffered_bytes_);
}

std::vector<Trace> NaiveSorter::DrainSorted() {
  std::vector<Trace> out;
  out.reserve(heap_.size());
  while (!heap_.empty()) {
    out.push_back(heap_.top());
    heap_.pop();
  }
  buffered_bytes_ = 0;
  return out;
}

}  // namespace leopard
