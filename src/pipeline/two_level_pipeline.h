#ifndef LEOPARD_PIPELINE_TWO_LEVEL_PIPELINE_H_
#define LEOPARD_PIPELINE_TWO_LEVEL_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "common/state_codec.h"
#include "obs/registry.h"
#include "trace/trace.h"

namespace leopard {

/// The paper's two-level pipeline (§IV-C): per-client *local buffers* absorb
/// each client's naturally-ordered trace stream; a *global buffer* (min-heap
/// on ts_bef) merges them; a *watermark* — the smallest front ts_bef across
/// local buffers — bounds what may be dispatched, guaranteeing monotonically
/// increasing dispatch order (Theorem 1).
///
/// Producer side: Push(client, trace) in ts_bef order per client, then
/// Close(client) at end of stream. Consumer side: Dispatch() returns the
/// next trace in global ts_bef order, or nullopt when the pipeline is
/// starved (an open local buffer is empty, so the watermark cannot advance).
///
/// With Options::optimized (default), each round fetches only from the local
/// buffer with the smallest timestamp — the §IV-C optimization that keeps
/// the global heap small when clients progress unevenly. The unoptimized
/// mode ("w/o Opt" in Fig. 10) fetches every local buffer wholesale each
/// round, letting traces from fast clients pile up in the heap.
class TwoLevelPipeline {
 public:
  struct Options {
    bool optimized = true;
    /// Max traces pulled from one local buffer per fetch in optimized mode.
    size_t fetch_batch = 256;
  };

  struct Stats {
    uint64_t dispatched = 0;
    uint64_t rounds = 0;           ///< fetch rounds executed
    size_t max_global_heap = 0;    ///< peak traces in the global min-heap
    size_t max_global_bytes = 0;   ///< peak approximate bytes in the heap —
                                   ///< the verifier-side memory of Fig. 10
                                   ///< (local buffers live client-side)
    size_t max_buffered = 0;       ///< peak traces buffered (heap + locals)
    size_t max_buffered_bytes = 0; ///< peak approximate bytes buffered
  };

  explicit TwoLevelPipeline(uint32_t n_clients)
      : TwoLevelPipeline(n_clients, Options()) {}
  TwoLevelPipeline(uint32_t n_clients, Options options);

  /// Appends a trace from `client`. Traces from one client must arrive in
  /// non-decreasing ts_bef order (and, for clients registered mid-run with
  /// AddClient, never below the dispatch floor they were admitted at).
  void Push(ClientId client, Trace trace);

  /// Marks `client`'s stream as ended; its emptiness no longer stalls the
  /// watermark.
  void Close(ClientId client);

  /// Registers a new client stream while the pipeline is running — the
  /// online-ingestion case where sessions join after dispatch has started.
  /// The new client is admitted at the current dispatch floor: its traces
  /// must carry ts_bef >= dispatch_floor() as observed at registration,
  /// otherwise monotonic dispatch order (Theorem 1) could not be preserved.
  /// Callers admitting untrusted streams must validate that bound
  /// themselves before Push.
  ClientId AddClient();

  /// Re-admits a previously Close()d client stream — the reconnect case
  /// where a session resumes the same client id mid-run. Returns the
  /// stream's new floor: max(its last pushed ts_bef, the dispatch floor),
  /// the oldest ts_bef the resumed stream may still legally push without
  /// breaking Theorem 1. The client must already be closed.
  Timestamp Reopen(ClientId client);

  /// Largest ts_bef handed out by Dispatch() so far — the lower bound on
  /// what a client registered now may still push.
  Timestamp dispatch_floor() const { return max_dispatched_; }

  /// Next trace in global ts_bef order, or nullopt when starved. After all
  /// clients are closed, drains everything.
  std::optional<Trace> Dispatch();

  /// True when every client is closed and all traces have been dispatched.
  bool Exhausted() const;

  const Stats& stats() const { return stats_; }
  Timestamp watermark() const { return watermark_; }
  /// Approximate bytes of all buffered (undispatched) traces, heap + locals.
  /// The durable server uses it to re-seed ingress backpressure accounting
  /// after a resume.
  size_t buffered_bytes() const { return buffered_bytes_; }

  /// Checkpoint hooks (src/durable): serialize / restore the whole buffer
  /// state — local queues, closed flags, per-client floors, the global heap
  /// and the watermark/floor/byte accounting. Buffered traces are encoded
  /// with the trace_io record codec, same as the WAL.
  void SaveState(StateWriter& w) const;
  Status LoadState(StateReader& r);

  /// Attaches observability: a pipeline.dispatch_ns histogram (time per
  /// successful Dispatch call, including fetch rounds), a
  /// pipeline.dispatched counter, and a pipeline.queue_depth gauge tracking
  /// buffered traces (heap + locals) with its high-water mark. The gauge is
  /// atomic, so a progress reporter may read it while a verifier thread
  /// drives the pipeline. Dispatch timing is sampled — one call in
  /// `span_sample_every` reads the clock (pass 1 to time every call);
  /// counter and gauge are always exact. The registry must outlive the
  /// pipeline; nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     uint32_t span_sample_every = 16);

 private:
  struct ByTsBef {
    bool operator()(const Trace& a, const Trace& b) const {
      return a.ts_bef() > b.ts_bef();  // min-heap
    }
  };

  /// Recomputes the watermark: the smallest lower bound on any trace that
  /// can still arrive or sits in a local buffer. A non-empty buffer
  /// contributes its head's ts_bef; an empty open buffer contributes the
  /// client's last pushed ts_bef (future pushes are non-decreasing); an
  /// empty closed buffer contributes nothing.
  void UpdateWatermark();
  /// Moves at least one trace from a local buffer into the global heap;
  /// returns false when every local buffer is empty.
  bool FetchRound();
  void NoteBuffered();

  Options options_;
  std::vector<std::deque<Trace>> locals_;
  std::vector<bool> closed_;
  std::vector<Timestamp> last_pushed_;
  std::priority_queue<Trace, std::vector<Trace>, ByTsBef> global_;
  Timestamp watermark_ = 0;
  Timestamp max_dispatched_ = 0;
  size_t buffered_traces_ = 0;
  size_t buffered_bytes_ = 0;
  size_t heap_bytes_ = 0;
  Stats stats_;

  obs::Histogram* dispatch_ns_ = nullptr;
  obs::Counter* dispatched_ctr_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  uint32_t span_sample_every_ = 16;
  uint32_t span_tick_ = 0;
};

/// Baseline for Fig. 10: one big global min-heap with no local buffering —
/// every trace from every client goes straight into a heap of the entire
/// backlog, and nothing can be dispatched before all input has arrived
/// (there is no watermark to certify completeness).
class NaiveSorter {
 public:
  void Push(ClientId client, Trace trace);

  /// Drains all traces in ts_bef order. Call after all pushes.
  std::vector<Trace> DrainSorted();

  size_t max_buffered() const { return max_buffered_; }
  size_t max_buffered_bytes() const { return max_buffered_bytes_; }

 private:
  struct ByTsBef {
    bool operator()(const Trace& a, const Trace& b) const {
      return a.ts_bef() > b.ts_bef();
    }
  };
  std::priority_queue<Trace, std::vector<Trace>, ByTsBef> heap_;
  size_t max_buffered_ = 0;
  size_t buffered_bytes_ = 0;
  size_t max_buffered_bytes_ = 0;
};

}  // namespace leopard

#endif  // LEOPARD_PIPELINE_TWO_LEVEL_PIPELINE_H_
