#ifndef LEOPARD_TXN_TRANSACTION_H_
#define LEOPARD_TXN_TRANSACTION_H_

#include <unordered_map>
#include <vector>

#include "trace/trace.h"
#include "txn/types.h"

namespace leopard {

/// Per-transaction execution state kept by MiniDB while a transaction is
/// active (and briefly after commit, for SSI conflict bookkeeping).
struct Transaction {
  TxnId id = 0;
  ClientId client = 0;
  TxnStatus status = TxnStatus::kActive;

  /// Isolation level this transaction runs at: the database default, or the
  /// client's per-session override (Database::Options::session_isolation).
  /// Selects the per-transaction mechanism subset (snapshot scope, FUW,
  /// locking reads, SSI participation) in a mixed-level run.
  IsolationLevel isolation = IsolationLevel::kSerializable;

  /// MVCC snapshot: highest commit LSN visible to this transaction. Taken
  /// lazily at the first operation (transaction-level consistent read) or
  /// refreshed per statement (statement-level consistent read).
  Lsn snapshot = 0;
  bool snapshot_taken = false;

  /// MVTO start timestamp / OCC begin marker.
  Lsn start_ts = 0;

  /// Commit LSN once committed (0 while active/aborted).
  Lsn commit_lsn = 0;

  /// Buffered uncommitted writes: final value per key plus write order.
  std::unordered_map<Key, Value> write_buffer;
  std::vector<Key> write_order;

  /// Keys read and the version_ts observed — OCC validation input.
  std::unordered_map<Key, Lsn> read_versions;

  /// SSI dangerous-structure flags: has an inbound / outbound rw
  /// antidependency with a concurrent transaction.
  bool ssi_in = false;
  bool ssi_out = false;

  void BufferWrite(Key key, Value value) {
    auto [it, inserted] = write_buffer.try_emplace(key, value);
    if (inserted) {
      write_order.push_back(key);
    } else {
      it->second = value;
    }
  }
};

}  // namespace leopard

#endif  // LEOPARD_TXN_TRANSACTION_H_
