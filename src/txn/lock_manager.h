#ifndef LEOPARD_TXN_LOCK_MANAGER_H_
#define LEOPARD_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace leopard {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Record-level S/X lock table with a NO-WAIT policy: a conflicting request
/// fails immediately with kAborted instead of blocking. NO-WAIT keeps the
/// deterministic simulation harness free of blocked clients; the dependency
/// structure Leopard observes is the same as with blocking 2PL, and the
/// abort-rate-vs-contention trend of Fig. 11(b) is preserved.
///
/// Locks are held until ReleaseAll (strict two-phase locking). S->X upgrade
/// succeeds when the requester is the only shared holder.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `key` for `txn`. Re-acquiring an already-held lock
  /// (same or weaker mode) is a no-op. Returns kAborted on conflict.
  Status Acquire(TxnId txn, Key key, LockMode mode);

  /// Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// True iff `txn` currently holds a lock on `key` with at least `mode`.
  bool Holds(TxnId txn, Key key, LockMode mode) const;

  /// Holders that conflict with `txn` requesting `mode` on `key` (used by
  /// the wait-die policy to decide between waiting and dying).
  std::vector<TxnId> ConflictingHolders(TxnId txn, Key key,
                                        LockMode mode) const;

  /// Number of keys with at least one holder (for tests/stats).
  size_t LockedKeyCount() const;

 private:
  struct Entry {
    // Invariant: if exclusive_holder != 0 then shared_holders is empty or
    // contains only exclusive_holder (during upgrade bookkeeping we clear it).
    TxnId exclusive_holder = 0;
    std::vector<TxnId> shared_holders;

    bool Empty() const {
      return exclusive_holder == 0 && shared_holders.empty();
    }
  };

  std::unordered_map<Key, Entry> table_;
  std::unordered_map<TxnId, std::vector<Key>> held_;
};

}  // namespace leopard

#endif  // LEOPARD_TXN_LOCK_MANAGER_H_
