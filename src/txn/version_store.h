#ifndef LEOPARD_TXN_VERSION_STORE_H_
#define LEOPARD_TXN_VERSION_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"
#include "txn/types.h"

namespace leopard {

/// One committed version of a record.
struct StoredVersion {
  Value value = 0;
  TxnId writer = 0;
  /// Commit order position (assigned when the writer commits).
  Lsn commit_lsn = 0;
  /// Version axis used for visibility. Equal to commit_lsn for commit-order
  /// protocols; equal to the writer's start timestamp for MVTO.
  Lsn version_ts = 0;
};

/// In-memory multi-version record store for MiniDB. Holds only *committed*
/// versions; in-flight writes live in the owning transaction's write buffer.
///
/// Not thread-safe; the Database serializes access.
class VersionStore {
 public:
  VersionStore() = default;
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Installs a committed version, keeping the chain sorted by version_ts.
  void Install(Key key, const StoredVersion& v);

  /// Latest version with version_ts <= snapshot (MVCC consistent read).
  /// NotFound if the key has no visible version.
  StatusOr<StoredVersion> ReadAtSnapshot(Key key, Lsn snapshot) const;

  /// Latest committed version regardless of snapshot.
  StatusOr<StoredVersion> ReadLatest(Key key) const;

  /// Version immediately *preceding* the one visible at `snapshot`; used by
  /// stale-snapshot fault injection. NotFound if there is no older version.
  StatusOr<StoredVersion> ReadStale(Key key, Lsn snapshot) const;

  /// version_ts of the newest committed version, or 0 if none.
  Lsn LatestVersionTs(Key key) const;

  /// commit_lsn of the newest committed version, or 0 if none.
  Lsn LatestCommitLsn(Key key) const;

  /// Writers of committed versions with commit_lsn > `snapshot` (newest
  /// first). Used by the SSI reader-side rw-antidependency check.
  std::vector<TxnId> WritersAfter(Key key, Lsn snapshot) const;

  /// MVTO read-timestamp bookkeeping: remember that a reader with timestamp
  /// `ts` observed this key, and query the maximum such timestamp.
  void NoteReadTs(Key key, Lsn ts);
  Lsn MaxReadTs(Key key) const;

  bool Contains(Key key) const { return map_.contains(key); }
  size_t KeyCount() const { return map_.size(); }

  /// Total number of stored versions (tests/stats).
  size_t VersionCount() const;

 private:
  struct KeyHistory {
    std::vector<StoredVersion> versions;  // sorted by version_ts ascending
    Lsn max_read_ts = 0;
  };

  std::unordered_map<Key, KeyHistory> map_;
};

}  // namespace leopard

#endif  // LEOPARD_TXN_VERSION_STORE_H_
