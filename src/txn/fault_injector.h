#ifndef LEOPARD_TXN_FAULT_INJECTOR_H_
#define LEOPARD_TXN_FAULT_INJECTOR_H_

#include <cstdint>

#include "common/rng.h"

namespace leopard {

/// Probabilistic isolation-bug plan for MiniDB. Each knob corrupts exactly
/// one of the four mechanisms, mirroring the classes of real bugs the paper
/// found in commercial DBMSs (§VI-F):
///
///  - drop_lock_prob        → ME violations (dirty write; Bugs 1 & 3:
///                            TiDB "first update acquires no lock" /
///                            "join forgets lock acquisition")
///  - stale_snapshot_prob   → CR violations (inconsistent read; Bug 2)
///  - dirty_read_prob       → CR violations (read of uncommitted/aborted
///                            data, G1a-style; Bug 4's phantom version)
///  - future_read_prob      → CR violations (read newer than snapshot)
///  - lost_write_prob       → CR violations (committed write never installed)
///  - skip_fuw_prob         → FUW violations (lost update under SI)
///  - skip_certifier_prob   → SC violations (write skew / non-serializable
///                            commits slipping past the certifier)
struct FaultPlan {
  double drop_lock_prob = 0.0;
  double stale_snapshot_prob = 0.0;
  double dirty_read_prob = 0.0;
  double future_read_prob = 0.0;
  double lost_write_prob = 0.0;
  double skip_fuw_prob = 0.0;
  double skip_certifier_prob = 0.0;
  /// A read of a deleted row returns the pre-delete version (Bug 4: "a
  /// query returns two versions" — the deleted one resurfaces).
  double resurrect_deleted_prob = 0.0;
  /// A range scan silently drops a visible row.
  double hide_row_prob = 0.0;

  /// How many LSNs a stale snapshot lags behind (at least 1 version).
  uint32_t stale_snapshot_lag = 4;

  bool AnyFault() const {
    return drop_lock_prob > 0 || stale_snapshot_prob > 0 ||
           dirty_read_prob > 0 || future_read_prob > 0 ||
           lost_write_prob > 0 || skip_fuw_prob > 0 ||
           skip_certifier_prob > 0 || resurrect_deleted_prob > 0 ||
           hide_row_prob > 0;
  }
};

/// Deterministic coin-flipper for a FaultPlan. Separate RNG stream from the
/// workload so enabling faults does not perturb the generated transactions.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed)
      : plan_(plan), rng_(seed ^ 0xfa17fa17fa17fa17ULL) {}

  bool DropLock() { return Hit(plan_.drop_lock_prob); }
  bool StaleSnapshot() { return Hit(plan_.stale_snapshot_prob); }
  bool DirtyRead() { return Hit(plan_.dirty_read_prob); }
  bool FutureRead() { return Hit(plan_.future_read_prob); }
  bool LostWrite() { return Hit(plan_.lost_write_prob); }
  bool SkipFuw() { return Hit(plan_.skip_fuw_prob); }
  bool SkipCertifier() { return Hit(plan_.skip_certifier_prob); }
  bool ResurrectDeleted() { return Hit(plan_.resurrect_deleted_prob); }
  bool HideRow() { return Hit(plan_.hide_row_prob); }

  const FaultPlan& plan() const { return plan_; }

  /// Total number of faults actually injected (for test assertions: a run
  /// that injected nothing cannot be expected to produce violations).
  uint64_t injected_count() const { return injected_; }

 private:
  bool Hit(double p) {
    if (p <= 0.0) return false;
    bool hit = rng_.Chance(p);
    if (hit) ++injected_;
    return hit;
  }

  FaultPlan plan_;
  Rng rng_;
  uint64_t injected_ = 0;
};

}  // namespace leopard

#endif  // LEOPARD_TXN_FAULT_INJECTOR_H_
