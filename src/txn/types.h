#ifndef LEOPARD_TXN_TYPES_H_
#define LEOPARD_TXN_TYPES_H_

#include <cstdint>

#include "trace/trace.h"

namespace leopard {

/// Concurrency-control protocol combinations found in the surveyed DBMSs
/// (paper Fig. 1). Each protocol is an assembly of the four mechanisms.
enum class Protocol : uint8_t {
  kMvcc2pl = 0,   ///< MVCC reads + 2PL writes (InnoDB/Aurora/SQL Server style)
  kMvcc2plSsi,    ///< MVCC + 2PL + SSI certifier (PostgreSQL serializable)
  kMvccOcc,       ///< MVCC snapshot reads + OCC validation (FoundationDB)
  kMvccTo,        ///< Multi-version timestamp ordering (CockroachDB style)
  k2pl,           ///< Pure strict 2PL, single-version (SQLite style)
  kPercolator,    ///< Optimistic SI: buffered writes, first-committer-wins
                  ///< validation at commit (TiDB optimistic / Percolator)
};

const char* ProtocolName(Protocol p);

// IsolationLevel lives in trace/trace.h (traces carry the declaring
// session's level); it is re-exported here through that include. Which
// anomalies each level admits depends on the protocol, exactly as in real
// systems: e.g. MVCC+2PL repeatable read (InnoDB) allows lost updates while
// SI (PostgreSQL RR) does not.

/// How lock conflicts are handled. NO-WAIT aborts the requester instantly
/// (fully deterministic); WAIT-DIE lets a requester older than every
/// conflicting holder wait (the client retries the operation, stretching
/// its trace interval like a blocked statement in a real engine) while
/// younger requesters abort — deadlock-free by construction.
enum class LockWaitPolicy : uint8_t {
  kNoWait = 0,
  kWaitDie,
};

enum class TxnStatus : uint8_t {
  kActive = 0,
  kCommitted,
  kAborted,
};

/// Monotone logical sequence number used by MiniDB for snapshots and commit
/// ordering. Internal to the engine — the verifier never sees it (black box).
using Lsn = uint64_t;

}  // namespace leopard

#endif  // LEOPARD_TXN_TYPES_H_
