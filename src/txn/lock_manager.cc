#include "txn/lock_manager.h"

#include <algorithm>

namespace leopard {

Status LockManager::Acquire(TxnId txn, Key key, LockMode mode) {
  Entry& e = table_[key];
  bool holds_shared = std::find(e.shared_holders.begin(),
                                e.shared_holders.end(),
                                txn) != e.shared_holders.end();
  if (mode == LockMode::kShared) {
    if (e.exclusive_holder == txn || holds_shared) return Status::Ok();
    if (e.exclusive_holder != 0) {
      return Status::Aborted("lock conflict: X held");
    }
    e.shared_holders.push_back(txn);
    held_[txn].push_back(key);
    return Status::Ok();
  }
  // Exclusive request.
  if (e.exclusive_holder == txn) return Status::Ok();
  if (e.exclusive_holder != 0) {
    return Status::Aborted("lock conflict: X held");
  }
  if (!e.shared_holders.empty()) {
    // Upgrade allowed only when txn is the sole shared holder.
    if (e.shared_holders.size() == 1 && holds_shared) {
      e.shared_holders.clear();
      e.exclusive_holder = txn;
      return Status::Ok();  // key already recorded in held_
    }
    return Status::Aborted("lock conflict: S held by others");
  }
  e.exclusive_holder = txn;
  held_[txn].push_back(key);
  return Status::Ok();
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (Key key : it->second) {
    auto eit = table_.find(key);
    if (eit == table_.end()) continue;
    Entry& e = eit->second;
    if (e.exclusive_holder == txn) e.exclusive_holder = 0;
    auto sit = std::find(e.shared_holders.begin(), e.shared_holders.end(),
                         txn);
    if (sit != e.shared_holders.end()) e.shared_holders.erase(sit);
    if (e.Empty()) table_.erase(eit);
  }
  held_.erase(it);
}

bool LockManager::Holds(TxnId txn, Key key, LockMode mode) const {
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  const Entry& e = it->second;
  if (e.exclusive_holder == txn) return true;
  if (mode == LockMode::kShared) {
    return std::find(e.shared_holders.begin(), e.shared_holders.end(),
                     txn) != e.shared_holders.end();
  }
  return false;
}

std::vector<TxnId> LockManager::ConflictingHolders(TxnId txn, Key key,
                                                   LockMode mode) const {
  std::vector<TxnId> out;
  auto it = table_.find(key);
  if (it == table_.end()) return out;
  const Entry& e = it->second;
  if (e.exclusive_holder != 0 && e.exclusive_holder != txn) {
    out.push_back(e.exclusive_holder);
  }
  if (mode == LockMode::kExclusive) {
    for (TxnId holder : e.shared_holders) {
      if (holder != txn) out.push_back(holder);
    }
  }
  return out;
}

size_t LockManager::LockedKeyCount() const { return table_.size(); }

}  // namespace leopard
