#ifndef LEOPARD_TXN_DATABASE_H_
#define LEOPARD_TXN_DATABASE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"
#include "txn/fault_injector.h"
#include "txn/kv_interface.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "txn/version_store.h"

namespace leopard {

/// MiniDB: an in-memory multi-version transactional key-value store used as
/// the DBMS-under-test. It implements the concurrency-control assemblies of
/// paper Fig. 1 — MVCC+2PL (InnoDB-style), MVCC+2PL+SSI (PostgreSQL-style),
/// MVCC+OCC (FoundationDB-style), MVTO (CockroachDB-style) and pure 2PL
/// (SQLite-style) — at isolation levels RC / RR / SI / SER, and supports
/// deterministic fault injection that corrupts exactly one of the four
/// mechanisms (CR, ME, FUW, SC) at a time.
///
/// All public methods are thread-safe (serialized by an internal mutex); the
/// virtual-time harness also drives it single-threaded.
class Database : public TransactionalKv {
 public:
  struct Options {
    Protocol protocol = Protocol::kMvcc2plSsi;
    IsolationLevel isolation = IsolationLevel::kSerializable;
    LockWaitPolicy lock_wait = LockWaitPolicy::kNoWait;
    FaultPlan faults;
    uint64_t fault_seed = 1;
    /// Per-client isolation-level overrides for mixed-level runs: a client
    /// listed here begins every transaction at its own level instead of
    /// `isolation`. Unlisted clients use the default.
    std::unordered_map<ClientId, IsolationLevel> session_isolation;
  };

  struct Stats {
    uint64_t begins = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  explicit Database(const Options& options);
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Bulk-loads initial rows as committed versions written by kLoadTxnId.
  void Load(const std::vector<WriteAccess>& rows) override;

  /// Starts a transaction on behalf of `client` and returns its id (> 0).
  TxnId Begin(ClientId client) override;

  /// Reads one key. kAborted means the transaction was aborted by the engine
  /// (lock conflict under NO-WAIT); kNotFound means no visible version.
  StatusOr<Value> Read(TxnId txn, Key key) override;

  /// Range read of `count` consecutive keys starting at `first`; missing
  /// keys are skipped. One consistent snapshot per call at statement-level
  /// isolation.
  StatusOr<std::vector<ReadAccess>> ReadRange(TxnId txn, Key first,
                                              uint32_t count) override;

  /// Buffers a write. May abort the transaction (lock conflict, FUW).
  Status Write(TxnId txn, Key key, Value value) override;

  /// Deletes a key: buffers a tombstone version. Same conflict rules as a
  /// write. Subsequent reads of the key (beyond this transaction) see no
  /// row until someone re-inserts it.
  Status Delete(TxnId txn, Key key) override;

  /// Locking read (SELECT ... FOR UPDATE): acquires the exclusive lock and
  /// returns the latest committed value (a *current* read, not a snapshot
  /// read), like PostgreSQL/InnoDB. kNotFound if the row is absent.
  StatusOr<Value> ReadForUpdate(TxnId txn, Key key) override;

  /// Attempts to commit. kAborted means certifier/validation rejected the
  /// transaction; in that case the transaction has already been rolled back.
  Status Commit(TxnId txn) override;

  /// Rolls back. Idempotent on already-finished transactions.
  Status Abort(TxnId txn) override;

  const Options& options() const { return options_; }
  /// Effective isolation level for `client`'s transactions (the per-session
  /// override when present, the database default otherwise).
  IsolationLevel isolation_for(ClientId client) const;
  Stats stats() const;
  uint64_t injected_fault_count() const;

  /// Test-only introspection: latest committed value of a key.
  StatusOr<Value> DebugReadLatest(Key key) const;
  size_t DebugVersionCount() const;
  size_t DebugLiveTxnCount() const;

 private:
  // All helpers below assume mu_ is held.
  Transaction* GetActive(TxnId txn);
  /// Acquires a lock under the configured wait policy. kBusy means the
  /// caller should retry the whole operation later (wait-die wait);
  /// kAborted means the transaction has been rolled back.
  Status AcquireLock(Transaction* t, Key key, LockMode mode);
  void EnsureSnapshot(Transaction* t);
  void AbortLocked(Transaction* t);
  void FinishTxn(Transaction* t, TxnStatus status);
  StatusOr<Value> ReadLocked(Transaction* t, Key key,
                             bool refresh_statement_snapshot);
  Status WriteLocked(Transaction* t, Key key, Value value);
  Status ValidateCommitLocked(Transaction* t);
  void InstallWritesLocked(Transaction* t);
  void MaybeGcLocked();

  // Per-transaction mechanism selection: a transaction's own isolation level
  // (mixed-level runs) decides its snapshot scope, FUW participation,
  // locking reads and SSI membership.
  bool UsesMvccReads(const Transaction* t) const;
  bool BufferedCommitProtocol() const;
  bool LockingReads(const Transaction* t) const;
  bool FuwEnabled(const Transaction* t) const;
  bool StatementLevelSnapshot(const Transaction* t) const;
  bool SsiEnabled(const Transaction* t) const;
  /// Protocol-level: any transaction of this database may be SSI-tracked
  /// (sireads GC must run even when the current txn is weak).
  bool SsiProtocol() const { return options_.protocol == Protocol::kMvcc2plSsi; }

  Options options_;
  mutable std::mutex mu_;
  FaultInjector faults_;
  LockManager locks_;
  VersionStore versions_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> txns_;
  /// Readers per key for SSI rw-antidependency detection (SIREAD marks).
  std::unordered_map<Key, std::vector<TxnId>> sireads_;
  Lsn lsn_ = 0;
  TxnId next_txn_ = 1;
  uint64_t commits_since_gc_ = 0;
  Stats stats_;
};

}  // namespace leopard

#endif  // LEOPARD_TXN_DATABASE_H_
