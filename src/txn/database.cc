#include "txn/database.h"

#include <algorithm>

namespace leopard {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kMvcc2pl:
      return "MVCC+2PL";
    case Protocol::kMvcc2plSsi:
      return "MVCC+2PL+SSI";
    case Protocol::kMvccOcc:
      return "MVCC+OCC";
    case Protocol::kMvccTo:
      return "MVTO";
    case Protocol::k2pl:
      return "2PL";
    case Protocol::kPercolator:
      return "Percolator";
  }
  return "UNKNOWN";
}

// IsolationLevelName lives in trace/trace.cc with the enum.

Database::Database(const Options& options)
    : options_(options), faults_(options.faults, options.fault_seed) {}

IsolationLevel Database::isolation_for(ClientId client) const {
  auto it = options_.session_isolation.find(client);
  return it != options_.session_isolation.end() ? it->second
                                                : options_.isolation;
}

bool Database::UsesMvccReads(const Transaction* t) const {
  if (options_.protocol == Protocol::k2pl) return false;
  if (LockingReads(t)) return false;
  return true;
}

bool Database::BufferedCommitProtocol() const {
  return options_.protocol == Protocol::kMvccOcc ||
         options_.protocol == Protocol::kPercolator;
}

// InnoDB-style SERIALIZABLE: plain 2PL with shared locks on reads, reading
// the latest committed version. Pure 2PL always reads under locks.
bool Database::LockingReads(const Transaction* t) const {
  if (options_.protocol == Protocol::k2pl) return true;
  return options_.protocol == Protocol::kMvcc2pl &&
         t->isolation == IsolationLevel::kSerializable;
}

// First-updater-wins applies at snapshot isolation, and — PostgreSQL-style —
// at every level >= REPEATABLE_READ of the SSI protocol (PostgreSQL's RR *is*
// snapshot isolation). InnoDB-style RR deliberately lacks it, reproducing the
// lost-update difference the paper highlights (§I, C2).
bool Database::FuwEnabled(const Transaction* t) const {
  if (t->isolation == IsolationLevel::kSnapshotIsolation) return true;
  if (options_.protocol == Protocol::kMvcc2plSsi &&
      t->isolation >= IsolationLevel::kRepeatableRead) {
    return true;
  }
  return false;
}

bool Database::StatementLevelSnapshot(const Transaction* t) const {
  return t->isolation == IsolationLevel::kReadCommitted;
}

bool Database::SsiEnabled(const Transaction* t) const {
  return options_.protocol == Protocol::kMvcc2plSsi &&
         t->isolation == IsolationLevel::kSerializable;
}

void Database::Load(const std::vector<WriteAccess>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  Lsn load_lsn = ++lsn_;
  for (const auto& row : rows) {
    StoredVersion v;
    v.value = row.value;
    v.writer = kLoadTxnId;
    v.commit_lsn = load_lsn;
    v.version_ts = load_lsn;
    versions_.Install(row.key, v);
  }
}

TxnId Database::Begin(ClientId client) {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_txn_++;
  auto t = std::make_unique<Transaction>();
  t->id = id;
  t->client = client;
  t->isolation = isolation_for(client);
  if (options_.protocol == Protocol::kMvccTo) {
    t->start_ts = ++lsn_;
  } else {
    t->start_ts = lsn_;
  }
  ++stats_.begins;
  txns_.emplace(id, std::move(t));
  return id;
}

Transaction* Database::GetActive(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return nullptr;
  Transaction* t = it->second.get();
  return t->status == TxnStatus::kActive ? t : nullptr;
}

void Database::EnsureSnapshot(Transaction* t) {
  if (StatementLevelSnapshot(t) || !t->snapshot_taken) {
    t->snapshot = lsn_;
    t->snapshot_taken = true;
    if (faults_.StaleSnapshot()) {
      uint32_t lag = options_.faults.stale_snapshot_lag;
      t->snapshot = t->snapshot > lag ? t->snapshot - lag : 0;
    }
  }
}

Status Database::AcquireLock(Transaction* t, Key key, LockMode mode) {
  Status s = locks_.Acquire(t->id, key, mode);
  if (s.ok()) return s;
  if (options_.lock_wait == LockWaitPolicy::kWaitDie) {
    // Wait-die: an older requester (smaller id = earlier begin) waits for
    // the holders; a younger one dies. Deadlock-free since waits only go
    // from older to younger.
    std::vector<TxnId> holders =
        locks_.ConflictingHolders(t->id, key, mode);
    bool older_than_all = !holders.empty();
    for (TxnId h : holders) {
      if (t->id > h) {
        older_than_all = false;
        break;
      }
    }
    if (older_than_all) return Status::Busy("lock wait");
  }
  AbortLocked(t);
  return s;
}

void Database::FinishTxn(Transaction* t, TxnStatus status) {
  locks_.ReleaseAll(t->id);
  t->status = status;
  if (status == TxnStatus::kAborted) {
    ++stats_.aborts;
    // Aborted transactions leave no trace in the store; drop SIREAD marks
    // and the transaction object eagerly (nothing depends on them).
    if (SsiProtocol()) {
      for (const auto& [key, ts] : t->read_versions) {
        auto it = sireads_.find(key);
        if (it == sireads_.end()) continue;
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), t->id), v.end());
        if (v.empty()) sireads_.erase(it);
      }
    }
    txns_.erase(t->id);
  } else {
    ++stats_.commits;
    ++commits_since_gc_;
    MaybeGcLocked();
  }
}

void Database::AbortLocked(Transaction* t) {
  FinishTxn(t, TxnStatus::kAborted);
}

StatusOr<Value> Database::Read(TxnId txn, Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::FailedPrecondition("txn not active");
  ++stats_.reads;
  return ReadLocked(t, key, /*refresh_statement_snapshot=*/true);
}

StatusOr<Value> Database::ReadLocked(Transaction* t, Key key,
                                     bool refresh_statement_snapshot) {
  // Read-your-own-writes always wins (own delete reads as absent).
  auto own = t->write_buffer.find(key);
  if (own != t->write_buffer.end()) {
    if (own->second == kTombstoneValue) {
      return Status::NotFound("deleted in this transaction");
    }
    return own->second;
  }

  if (LockingReads(t)) {
    if (!faults_.DropLock()) {
      Status s = AcquireLock(t, key, LockMode::kShared);
      if (!s.ok()) return s;  // kBusy: retry later; kAborted: rolled back
    }
    auto v = versions_.ReadLatest(key);
    if (!v.ok()) return v.status();
    t->read_versions[key] = v->version_ts;
    if (v->value == kTombstoneValue) return Status::NotFound("deleted");
    return v->value;
  }

  if (options_.protocol == Protocol::kMvccTo) {
    auto v = versions_.ReadAtSnapshot(key, t->start_ts);
    if (!v.ok()) return v.status();
    versions_.NoteReadTs(key, t->start_ts);
    t->read_versions[key] = v->version_ts;
    if (v->value == kTombstoneValue) return Status::NotFound("deleted");
    return v->value;
  }

  // MVCC consistent read.
  if (refresh_statement_snapshot) EnsureSnapshot(t);

  // Fault: dirty read — expose an uncommitted write of another transaction.
  if (faults_.DirtyRead()) {
    for (const auto& [id, other] : txns_) {
      if (id == t->id || other->status != TxnStatus::kActive) continue;
      auto w = other->write_buffer.find(key);
      if (w != other->write_buffer.end()) return w->second;
    }
  }
  // Fault: future read — see past the snapshot.
  if (faults_.FutureRead()) {
    auto latest = versions_.ReadLatest(key);
    if (latest.ok() && latest->version_ts > t->snapshot) {
      t->read_versions[key] = latest->version_ts;
      return latest->value;
    }
  }

  auto v = versions_.ReadAtSnapshot(key, t->snapshot);
  if (!v.ok()) return v.status();
  t->read_versions[key] = v->version_ts;
  if (SsiEnabled(t)) {
    auto& readers = sireads_[key];
    if (std::find(readers.begin(), readers.end(), t->id) == readers.end()) {
      readers.push_back(t->id);
    }
    // Reader-side rw detection: a committed version newer than our snapshot
    // means we (the reader of the old version) have an outgoing rw edge to
    // its writer. If that writer already has an outgoing rw edge itself, it
    // is a committed pivot of a dangerous structure — abort the reader.
    if (!faults_.SkipCertifier()) {
      for (TxnId wid : versions_.WritersAfter(key, t->snapshot)) {
        if (wid == t->id) continue;
        t->ssi_out = true;
        auto wit = txns_.find(wid);
        if (wit == txns_.end()) continue;
        Transaction* w = wit->second.get();
        w->ssi_in = true;
        if (w->ssi_out) {
          AbortLocked(t);
          return Status::Aborted("SSI: dangerous structure (read)");
        }
      }
      if (t->ssi_in && t->ssi_out) {
        AbortLocked(t);
        return Status::Aborted("SSI: dangerous structure (read self)");
      }
    }
  }
  if (v->value == kTombstoneValue) {
    // Fault: a deleted version resurfaces (the paper's Bug 4).
    if (faults_.ResurrectDeleted()) {
      auto stale = versions_.ReadAtSnapshot(key, t->snapshot);
      Lsn ts = stale->version_ts;
      while (true) {
        auto older = versions_.ReadStale(key, ts);
        if (!older.ok()) break;
        if (older->value != kTombstoneValue) return older->value;
        ts = older->version_ts;
      }
    }
    return Status::NotFound("deleted");
  }
  return v->value;
}

StatusOr<std::vector<ReadAccess>> Database::ReadRange(TxnId txn, Key first,
                                                      uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::FailedPrecondition("txn not active");
  // One snapshot per statement: refresh once, then read all keys under it.
  if (UsesMvccReads(t)) EnsureSnapshot(t);
  std::vector<ReadAccess> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Key key = first + i;
    ++stats_.reads;
    auto v = ReadLocked(t, key, /*refresh_statement_snapshot=*/false);
    if (v.ok()) {
      if (faults_.HideRow()) continue;  // fault: scan drops a visible row
      out.push_back(ReadAccess{key, *v});
    } else if (v.status().code() == StatusCode::kAborted ||
               v.status().code() == StatusCode::kBusy) {
      // kBusy: the whole statement retries later (acquired locks are
      // re-entrant, so the retry is cheap).
      return v.status();
    }
    // NotFound keys are skipped, like a range scan.
  }
  return out;
}

Status Database::Write(TxnId txn, Key key, Value value) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::FailedPrecondition("txn not active");
  if (value == kTombstoneValue) {
    return Status::InvalidArgument("reserved tombstone value");
  }
  ++stats_.writes;
  return WriteLocked(t, key, value);
}

Status Database::Delete(TxnId txn, Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::FailedPrecondition("txn not active");
  ++stats_.writes;
  // A delete is a write of the tombstone version: same locks, same
  // first-updater-wins behaviour, same visibility-at-commit.
  return WriteLocked(t, key, kTombstoneValue);
}

StatusOr<Value> Database::ReadForUpdate(TxnId txn, Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::FailedPrecondition("txn not active");
  ++stats_.reads;
  // Like any first statement, FOR UPDATE establishes the transaction
  // snapshot (it reads *current* state itself, but later snapshot reads
  // date from here).
  if (UsesMvccReads(t)) EnsureSnapshot(t);
  auto own = t->write_buffer.find(key);
  if (own != t->write_buffer.end()) {
    if (own->second == kTombstoneValue) {
      return Status::NotFound("deleted in this transaction");
    }
    return own->second;
  }
  if (!faults_.DropLock()) {
    Status s = AcquireLock(t, key, LockMode::kExclusive);
    if (!s.ok()) return s;
  }
  if (options_.protocol == Protocol::kMvccTo) {
    // MVTO reads at the transaction timestamp even under FOR UPDATE
    // (CockroachDB-style); the write-rule validation protects the lock's
    // intent instead.
    auto v = versions_.ReadAtSnapshot(key, t->start_ts);
    if (!v.ok()) return v.status();
    versions_.NoteReadTs(key, t->start_ts);
    t->read_versions[key] = v->version_ts;
    if (v->value == kTombstoneValue) return Status::NotFound("deleted");
    return v->value;
  }
  // Current read: the latest committed version, whatever the snapshot.
  auto v = versions_.ReadLatest(key);
  if (!v.ok()) return v.status();
  t->read_versions[key] = v->version_ts;
  if (v->value == kTombstoneValue) return Status::NotFound("deleted");
  return v->value;
}

Status Database::WriteLocked(Transaction* t, Key key, Value value) {
  switch (options_.protocol) {
    case Protocol::k2pl:
    case Protocol::kMvcc2pl:
    case Protocol::kMvcc2plSsi: {
      if (UsesMvccReads(t)) EnsureSnapshot(t);
      if (!faults_.DropLock()) {
        Status s = AcquireLock(t, key, LockMode::kExclusive);
        if (!s.ok()) return s;  // kBusy: retry later; kAborted: rolled back
      }
      if (FuwEnabled(t) && !faults_.SkipFuw()) {
        // First updater wins: a version committed after our snapshot means a
        // concurrent transaction already updated this record.
        if (versions_.LatestCommitLsn(key) > t->snapshot) {
          AbortLocked(t);
          return Status::Aborted("first updater wins");
        }
      }
      t->BufferWrite(key, value);
      return Status::Ok();
    }
    case Protocol::kMvccOcc:
    case Protocol::kPercolator:
      EnsureSnapshot(t);
      t->BufferWrite(key, value);
      return Status::Ok();
    case Protocol::kMvccTo:
      t->BufferWrite(key, value);
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status Database::ValidateCommitLocked(Transaction* t) {
  if (faults_.SkipCertifier()) return Status::Ok();
  switch (options_.protocol) {
    case Protocol::kMvccOcc: {
      // Backward validation: every read must still be the latest version.
      for (const auto& [key, ts] : t->read_versions) {
        if (versions_.LatestVersionTs(key) != ts) {
          return Status::Aborted("OCC validation failed");
        }
      }
      return Status::Ok();
    }
    case Protocol::kMvccTo: {
      // Timestamp-ordering write rules: abort if a later-timestamp reader or
      // writer already acted on any written key.
      for (const auto& [key, value] : t->write_buffer) {
        if (versions_.MaxReadTs(key) > t->start_ts) {
          return Status::Aborted("TO: read too late");
        }
        if (versions_.LatestVersionTs(key) > t->start_ts) {
          return Status::Aborted("TO: write too late");
        }
      }
      return Status::Ok();
    }
    case Protocol::kMvcc2plSsi: {
      if (!SsiEnabled(t)) return Status::Ok();
      // SSI certifier: detect rw antidependencies r -rw-> t created by our
      // writes over versions that concurrent transactions have read.
      for (const auto& [key, value] : t->write_buffer) {
        auto it = sireads_.find(key);
        if (it == sireads_.end()) continue;
        for (TxnId rid : it->second) {
          if (rid == t->id) continue;
          auto rit = txns_.find(rid);
          if (rit == txns_.end()) continue;
          Transaction* r = rit->second.get();
          bool concurrent =
              r->status == TxnStatus::kActive ||
              (r->status == TxnStatus::kCommitted &&
               r->commit_lsn > t->snapshot);
          if (!concurrent) continue;
          // Edge r -rw-> t.
          t->ssi_in = true;
          r->ssi_out = true;
          if (r->status == TxnStatus::kCommitted && r->ssi_in) {
            // r would become a committed pivot (in && out): dangerous
            // structure — abort the transaction that completes it.
            return Status::Aborted("SSI: dangerous structure (pivot)");
          }
        }
      }
      if (t->ssi_in && t->ssi_out) {
        return Status::Aborted("SSI: dangerous structure (self pivot)");
      }
      return Status::Ok();
    }
    case Protocol::kPercolator: {
      // First-committer-wins: any write key with a version committed after
      // our snapshot means a concurrent transaction updated it first.
      for (const auto& [key, value] : t->write_buffer) {
        if (versions_.LatestCommitLsn(key) > t->snapshot) {
          return Status::Aborted("Percolator: write-write conflict");
        }
      }
      return Status::Ok();
    }
    case Protocol::kMvcc2pl:
    case Protocol::k2pl:
      return Status::Ok();  // strict 2PL needs no commit-time certifier
  }
  return Status::Internal("unreachable");
}

void Database::InstallWritesLocked(Transaction* t) {
  t->commit_lsn = ++lsn_;
  for (Key key : t->write_order) {
    if (faults_.LostWrite()) continue;  // committed write silently dropped
    StoredVersion v;
    v.value = t->write_buffer[key];
    v.writer = t->id;
    v.commit_lsn = t->commit_lsn;
    v.version_ts = options_.protocol == Protocol::kMvccTo ? t->start_ts
                                                          : t->commit_lsn;
    versions_.Install(key, v);
  }
}

Status Database::Commit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* t = GetActive(txn);
  if (t == nullptr) return Status::Aborted("txn already finished");
  Status valid = ValidateCommitLocked(t);
  if (!valid.ok()) {
    AbortLocked(t);
    return valid;
  }
  InstallWritesLocked(t);
  FinishTxn(t, TxnStatus::kCommitted);
  return Status::Ok();
}

Status Database::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) return Status::Ok();  // idempotent
  Transaction* t = it->second.get();
  if (t->status != TxnStatus::kActive) return Status::Ok();
  AbortLocked(t);
  return Status::Ok();
}

void Database::MaybeGcLocked() {
  constexpr uint64_t kGcEvery = 64;
  if (commits_since_gc_ < kGcEvery) return;
  commits_since_gc_ = 0;
  // A committed transaction can be dropped once no active transaction is
  // concurrent with it (needed only for SSI flag propagation).
  Lsn min_active = kMaxTimestamp;
  for (const auto& [id, t] : txns_) {
    if (t->status == TxnStatus::kActive) {
      min_active = std::min(min_active, t->start_ts);
    }
  }
  for (auto it = txns_.begin(); it != txns_.end();) {
    Transaction* t = it->second.get();
    if (t->status == TxnStatus::kCommitted && t->commit_lsn < min_active) {
      if (SsiProtocol()) {
        for (const auto& [key, ts] : t->read_versions) {
          auto sit = sireads_.find(key);
          if (sit == sireads_.end()) continue;
          auto& v = sit->second;
          v.erase(std::remove(v.begin(), v.end(), t->id), v.end());
          if (v.empty()) sireads_.erase(sit);
        }
      }
      it = txns_.erase(it);
    } else {
      ++it;
    }
  }
}

Database::Stats Database::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t Database::injected_fault_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_.injected_count();
}

StatusOr<Value> Database::DebugReadLatest(Key key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto v = versions_.ReadLatest(key);
  if (!v.ok()) return v.status();
  return v->value;
}

size_t Database::DebugVersionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.VersionCount();
}

size_t Database::DebugLiveTxnCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_.size();
}

}  // namespace leopard
