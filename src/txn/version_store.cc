#include "txn/version_store.h"

#include <algorithm>

namespace leopard {

void VersionStore::Install(Key key, const StoredVersion& v) {
  auto& hist = map_[key];
  auto& vs = hist.versions;
  // Versions almost always arrive in version_ts order; insertion sort from
  // the tail keeps the common case O(1).
  auto pos = vs.end();
  while (pos != vs.begin() && std::prev(pos)->version_ts > v.version_ts) {
    --pos;
  }
  vs.insert(pos, v);
}

StatusOr<StoredVersion> VersionStore::ReadAtSnapshot(Key key,
                                                     Lsn snapshot) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no such key");
  const auto& vs = it->second.versions;
  for (auto rit = vs.rbegin(); rit != vs.rend(); ++rit) {
    if (rit->version_ts <= snapshot) return *rit;
  }
  return Status::NotFound("no version visible at snapshot");
}

StatusOr<StoredVersion> VersionStore::ReadLatest(Key key) const {
  auto it = map_.find(key);
  if (it == map_.end() || it->second.versions.empty()) {
    return Status::NotFound("no such key");
  }
  return it->second.versions.back();
}

StatusOr<StoredVersion> VersionStore::ReadStale(Key key, Lsn snapshot) const {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no such key");
  const auto& vs = it->second.versions;
  const StoredVersion* visible = nullptr;
  const StoredVersion* prev = nullptr;
  for (const auto& v : vs) {
    if (v.version_ts <= snapshot) {
      prev = visible;
      visible = &v;
    }
  }
  if (prev == nullptr) return Status::NotFound("no stale version");
  return *prev;
}

Lsn VersionStore::LatestVersionTs(Key key) const {
  auto it = map_.find(key);
  if (it == map_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.back().version_ts;
}

Lsn VersionStore::LatestCommitLsn(Key key) const {
  auto it = map_.find(key);
  if (it == map_.end() || it->second.versions.empty()) return 0;
  Lsn best = 0;
  for (const auto& v : it->second.versions) {
    best = std::max(best, v.commit_lsn);
  }
  return best;
}

std::vector<TxnId> VersionStore::WritersAfter(Key key, Lsn snapshot) const {
  std::vector<TxnId> writers;
  auto it = map_.find(key);
  if (it == map_.end()) return writers;
  for (auto rit = it->second.versions.rbegin();
       rit != it->second.versions.rend(); ++rit) {
    if (rit->commit_lsn > snapshot) writers.push_back(rit->writer);
  }
  return writers;
}

void VersionStore::NoteReadTs(Key key, Lsn ts) {
  auto& hist = map_[key];
  hist.max_read_ts = std::max(hist.max_read_ts, ts);
}

Lsn VersionStore::MaxReadTs(Key key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.max_read_ts;
}

size_t VersionStore::VersionCount() const {
  size_t n = 0;
  for (const auto& [k, hist] : map_) n += hist.versions.size();
  return n;
}

}  // namespace leopard
