#ifndef LEOPARD_TXN_KV_INTERFACE_H_
#define LEOPARD_TXN_KV_INTERFACE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace leopard {

/// The client-facing surface of a transactional key-value DBMS, as seen by
/// the tracing harness. MiniDB implements it natively; adapters wrap real
/// engines (e.g. SQLite) behind the same surface so the identical harness,
/// tracer and verifier run against them — the black-box property in action.
///
/// Error contract: kAborted means the engine rolled the transaction back
/// (conflict, validation); kBusy means the operation should be retried
/// later (lock wait) with the transaction still alive; kNotFound means the
/// row is absent (visible tombstone or never inserted).
class TransactionalKv {
 public:
  virtual ~TransactionalKv() = default;

  /// Bulk-loads initial rows as a committed load transaction.
  virtual void Load(const std::vector<WriteAccess>& rows) = 0;

  /// Starts a transaction on behalf of `client`; returns its id (> 0).
  virtual TxnId Begin(ClientId client) = 0;

  virtual StatusOr<Value> Read(TxnId txn, Key key) = 0;
  virtual StatusOr<Value> ReadForUpdate(TxnId txn, Key key) = 0;
  virtual StatusOr<std::vector<ReadAccess>> ReadRange(TxnId txn, Key first,
                                                      uint32_t count) = 0;
  virtual Status Write(TxnId txn, Key key, Value value) = 0;
  virtual Status Delete(TxnId txn, Key key) = 0;

  /// Multi-row statement (an UPDATE/DELETE whose predicate matches several
  /// rows): all writes succeed or the call fails as a unit. The default
  /// implementation loops Write/Delete; engines may override.
  virtual Status WriteBatch(TxnId txn,
                            const std::vector<WriteAccess>& writes) {
    for (const auto& w : writes) {
      Status s = w.value == kTombstoneValue ? Delete(txn, w.key)
                                            : Write(txn, w.key, w.value);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
  virtual Status Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;
};

}  // namespace leopard

#endif  // LEOPARD_TXN_KV_INTERFACE_H_
