#include "campaign/backend.h"

#include <algorithm>
#include <utility>

#include "txn/database.h"

#ifdef LEOPARD_HAVE_SQLITE
#include "adapters/sqlite_db.h"
#endif

namespace leopard {
namespace campaign {

namespace {

/// Committed versions kept per key in FaultyKv's shadow history. Two are
/// enough for a stale read; a little slack keeps churn scenarios honest.
constexpr size_t kHistoryDepth = 4;

std::unique_ptr<TransactionalKv> MakeMiniDb(const BackendOptions& options) {
  Database::Options db;
  db.isolation = options.isolation;
  db.session_isolation = options.session_isolation;
  db.faults = options.engine_faults;
  db.fault_seed = options.fault_seed;
  return std::make_unique<Database>(db);
}

#ifdef LEOPARD_HAVE_SQLITE
StatusOr<std::unique_ptr<TransactionalKv>> MakeSqlite(
    const BackendOptions& options) {
  SqliteDb::Options db;
  db.path = options.sqlite_path;
  // One connection per campaign session: SqliteDb maps client ->
  // connection as `client % connections`, so an undersized pool would make
  // two live sessions share a connection (and its transaction).
  db.connections = std::max<uint32_t>(1, options.sessions);
  db.journal_mode = options.sqlite_journal_mode;
  db.busy_timeout_ms = options.sqlite_busy_timeout_ms;
  db.metrics = options.metrics;
  auto sqlite = std::make_unique<SqliteDb>(db);
  if (!sqlite->ok()) {
    return Status::Internal("sqlite backend failed to initialize (path='" +
                            options.sqlite_path + "', journal_mode='" +
                            options.sqlite_journal_mode + "')");
  }
  return std::unique_ptr<TransactionalKv>(std::move(sqlite));
}
#endif

}  // namespace

StatusOr<std::unique_ptr<TransactionalKv>> MakeBackend(
    const std::string& name, const BackendOptions& options) {
  if (name == "minidb") return MakeMiniDb(options);
#ifdef LEOPARD_HAVE_SQLITE
  if (name == "sqlite") return MakeSqlite(options);
#endif
  std::string known;
  for (const std::string& b : BackendNames()) {
    if (!known.empty()) known += ", ";
    known += b;
  }
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (available: " + known + ")");
}

std::vector<std::string> BackendNames() {
  std::vector<std::string> names = {"minidb"};
#ifdef LEOPARD_HAVE_SQLITE
  names.push_back("sqlite");
#endif
  return names;
}

FaultyKv::FaultyKv(std::unique_ptr<TransactionalKv> inner,
                   const FaultPlan& plan, uint64_t seed)
    : inner_(std::move(inner)),
      injector_(plan, seed),
      pick_rng_(seed ^ 0x9e3779b97f4a7c15ULL) {}

void FaultyKv::Load(const std::vector<WriteAccess>& rows) {
  inner_->Load(rows);
  std::lock_guard<std::mutex> lock(mu_);
  for (const WriteAccess& row : rows) history_[row.key].push_back(row.value);
}

TxnId FaultyKv::Begin(ClientId client) {
  TxnId txn = inner_->Begin(client);
  std::lock_guard<std::mutex> lock(mu_);
  txn_writes_[txn];  // open an (empty) buffer
  return txn;
}

StatusOr<Value> FaultyKv::Read(TxnId txn, Key key) {
  auto got = inner_->Read(txn, key);
  std::lock_guard<std::mutex> lock(mu_);
  if (got.ok()) {
    if (injector_.HideRow()) return Status::NotFound("row hidden by fault");
    if (injector_.StaleSnapshot()) {
      auto it = history_.find(key);
      // Need a *previous* committed version distinct from the latest; fall
      // through to the truthful read otherwise (the coin already counted,
      // which only makes planted campaigns conservative).
      if (it != history_.end() && it->second.size() >= 2) {
        const Value stale = it->second[it->second.size() - 2];
        if (stale != kTombstoneValue) return stale;
      }
    }
    return got;
  }
  if (got.status().code() == StatusCode::kNotFound &&
      injector_.ResurrectDeleted()) {
    auto it = history_.find(key);
    if (it != history_.end()) {
      // Last committed non-tombstone version, if any survives the history.
      for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
        if (*v != kTombstoneValue) return *v;
      }
    }
  }
  return got;
}

StatusOr<Value> FaultyKv::ReadForUpdate(TxnId txn, Key key) {
  // Locking reads stay truthful: they anchor write-write ordering, and
  // corrupting them would break the engine's own locking discipline rather
  // than model a read-path bug.
  return inner_->ReadForUpdate(txn, key);
}

StatusOr<std::vector<ReadAccess>> FaultyKv::ReadRange(TxnId txn, Key first,
                                                      uint32_t count) {
  auto got = inner_->ReadRange(txn, first, count);
  if (!got.ok()) return got;
  std::lock_guard<std::mutex> lock(mu_);
  if (!got->empty() && injector_.HideRow()) {
    // Drop one row the scan actually saw — the classic phantom-maker: the
    // predicate matched, the result set lies.
    const size_t victim = pick_rng_.Uniform(got->size());
    got->erase(got->begin() + static_cast<ptrdiff_t>(victim));
  }
  return got;
}

Status FaultyKv::Write(TxnId txn, Key key, Value value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (injector_.LostWrite()) {
      // Report success, never forward: the client (and its trace) believe
      // the write committed; the engine never saw it.
      txn_writes_[txn][key] = value;
      return Status::Ok();
    }
  }
  Status s = inner_->Write(txn, key, value);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    txn_writes_[txn][key] = value;
  }
  return s;
}

Status FaultyKv::Delete(TxnId txn, Key key) {
  Status s = inner_->Delete(txn, key);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    txn_writes_[txn][key] = kTombstoneValue;
  }
  return s;
}

Status FaultyKv::Commit(TxnId txn) {
  Status s = inner_->Commit(txn);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txn_writes_.find(txn);
  if (it != txn_writes_.end()) {
    if (s.ok()) {
      for (const auto& [key, value] : it->second) {
        auto& versions = history_[key];
        versions.push_back(value);
        if (versions.size() > kHistoryDepth) {
          versions.erase(versions.begin());
        }
      }
    }
    txn_writes_.erase(it);
  }
  return s;
}

Status FaultyKv::Abort(TxnId txn) {
  Status s = inner_->Abort(txn);
  std::lock_guard<std::mutex> lock(mu_);
  txn_writes_.erase(txn);
  return s;
}

uint64_t FaultyKv::injected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injector_.injected_count();
}

}  // namespace campaign
}  // namespace leopard
