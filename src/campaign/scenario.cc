#include "campaign/scenario.h"

#include <algorithm>

namespace leopard {
namespace campaign {

namespace {

/// Phantom hunter. The stable population is the EVEN keys; the ODD keys
/// churn: inserts and deletes race the scanners. Scanners run the same
/// range predicate twice inside one transaction (the textbook phantom
/// witness) and then write, so the scan results feed dependencies the
/// verifier can anchor. ReadRange traces carry [first, first+count), which
/// is what lets the verifier reason about rows that are *absent* from the
/// result.
class PhantomWorkload : public Workload {
 public:
  explicit PhantomWorkload(const ScenarioOptions& options)
      : keys_(std::max<uint32_t>(options.keys, 8)),
        span_(std::min(std::max<uint32_t>(options.scan_span, 2), keys_)) {}

  std::string name() const override { return "phantom"; }

  std::vector<WriteAccess> InitialRows() const override {
    std::vector<WriteAccess> rows;
    for (Key k = 0; k < keys_; k += 2) {
      rows.push_back({k, MakeLoadValue(k)});
    }
    return rows;
  }

  TxnSpec NextTransaction(Rng& rng) override {
    TxnSpec txn;
    const uint32_t pick = rng.Uniform(10);
    if (pick < 4) {
      // Scanner: same predicate twice, then a write inside the window.
      const Key first = rng.Uniform(keys_ - span_ + 1);
      txn.ops.push_back(OpSpec::RangeRead(first, span_));
      txn.ops.push_back(OpSpec::RangeRead(first, span_));
      txn.ops.push_back(OpSpec::WriteUnique(first + rng.Uniform(span_)));
    } else if (pick < 7) {
      // Insert a churn row the scanners' predicates may cover.
      txn.ops.push_back(OpSpec::WriteUnique(OddKey(rng)));
    } else if (pick < 9) {
      // Delete a churn row (tombstone: later scans must not see it).
      txn.ops.push_back(OpSpec::Delete(OddKey(rng)));
    } else {
      // Point read + write keeps single-row dependencies flowing too.
      const Key k = rng.Uniform(keys_) & ~Key{1};
      txn.ops.push_back(OpSpec::Read(k));
      txn.ops.push_back(OpSpec::WriteUnique(k));
    }
    return txn;
  }

 private:
  Key OddKey(Rng& rng) const { return rng.Uniform(keys_ / 2) * 2 + 1; }

  const uint32_t keys_;
  const uint32_t span_;
};

/// Long interactive transactions: many statements, think time between them
/// (applied by the runner), alternating reads and unique writes over random
/// keys. Produces the wide uncertainty intervals of §VI-C's interactive
/// sessions.
class LongTxnWorkload : public Workload {
 public:
  explicit LongTxnWorkload(const ScenarioOptions& options)
      : keys_(std::max<uint32_t>(options.keys, 8)),
        ops_(std::max<uint32_t>(options.ops_per_txn, 2)) {}

  std::string name() const override { return "longtxn"; }

  std::vector<WriteAccess> InitialRows() const override {
    std::vector<WriteAccess> rows;
    for (Key k = 0; k < keys_; ++k) rows.push_back({k, MakeLoadValue(k)});
    return rows;
  }

  TxnSpec NextTransaction(Rng& rng) override {
    TxnSpec txn;
    for (uint32_t i = 0; i < ops_; ++i) {
      const Key k = rng.Uniform(keys_);
      if (i % 2 == 0) {
        txn.ops.push_back(OpSpec::Read(k));
      } else {
        txn.ops.push_back(OpSpec::WriteUnique(k));
      }
    }
    return txn;
  }

 private:
  const uint32_t keys_;
  const uint32_t ops_;
};

/// Hot-row churn: every transaction does a locking read-modify-write on one
/// of a handful of contended keys (plus one cold read for dependency
/// variety). Maximizes lock handoffs — FUW and lost-update bait.
class HotRowWorkload : public Workload {
 public:
  explicit HotRowWorkload(const ScenarioOptions& options)
      : keys_(std::max<uint32_t>(options.keys, 8)),
        hot_(std::min(std::max<uint32_t>(options.hot_keys, 1), keys_)) {}

  std::string name() const override { return "hotrow"; }

  std::vector<WriteAccess> InitialRows() const override {
    std::vector<WriteAccess> rows;
    for (Key k = 0; k < keys_; ++k) rows.push_back({k, MakeLoadValue(k)});
    return rows;
  }

  TxnSpec NextTransaction(Rng& rng) override {
    TxnSpec txn;
    const Key hot = rng.Uniform(hot_);
    txn.ops.push_back(OpSpec::ReadForUpdate(hot));
    txn.ops.push_back(OpSpec::WriteLastReadPlus(hot, 0));
    txn.ops.push_back(OpSpec::Read(hot_ + rng.Uniform(keys_ - hot_)));
    return txn;
  }

 private:
  const uint32_t keys_;
  const uint32_t hot_;
};

/// Plain read/write mix; the interesting part is the runner-side behavior
/// (periodic disconnect + session resume), not the access pattern.
class ReconnectWorkload : public Workload {
 public:
  explicit ReconnectWorkload(const ScenarioOptions& options)
      : keys_(std::max<uint32_t>(options.keys, 8)) {}

  std::string name() const override { return "reconnect"; }

  std::vector<WriteAccess> InitialRows() const override {
    std::vector<WriteAccess> rows;
    for (Key k = 0; k < keys_; ++k) rows.push_back({k, MakeLoadValue(k)});
    return rows;
  }

  TxnSpec NextTransaction(Rng& rng) override {
    TxnSpec txn;
    const Key k = rng.Uniform(keys_);
    txn.ops.push_back(OpSpec::Read(k));
    if (rng.Chance(0.5)) {
      txn.ops.push_back(OpSpec::WriteUnique(rng.Uniform(keys_)));
    }
    return txn;
  }

 private:
  const uint32_t keys_;
};

}  // namespace

StatusOr<Scenario> MakeScenario(const std::string& name,
                                const ScenarioOptions& options) {
  Scenario s;
  s.name = name;
  s.think_time_us = options.think_time_us;
  s.disconnect_every_txns = options.disconnect_every_txns;
  if (name == "phantom") {
    s.workload = std::make_shared<PhantomWorkload>(options);
  } else if (name == "longtxn") {
    s.workload = std::make_shared<LongTxnWorkload>(options);
    if (s.think_time_us == 0) s.think_time_us = 200;
  } else if (name == "hotrow") {
    s.workload = std::make_shared<HotRowWorkload>(options);
  } else if (name == "reconnect") {
    s.workload = std::make_shared<ReconnectWorkload>(options);
    if (s.disconnect_every_txns == 0) s.disconnect_every_txns = 25;
  } else {
    std::string known;
    for (const std::string& n : ScenarioNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument("unknown scenario '" + name +
                                   "' (available: " + known + ")");
  }
  return s;
}

std::vector<std::string> ScenarioNames() {
  return {"phantom", "longtxn", "hotrow", "reconnect"};
}

}  // namespace campaign
}  // namespace leopard
