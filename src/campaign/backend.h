#ifndef LEOPARD_CAMPAIGN_BACKEND_H_
#define LEOPARD_CAMPAIGN_BACKEND_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "trace/trace.h"
#include "txn/fault_injector.h"
#include "txn/kv_interface.h"

namespace leopard {

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace campaign {

/// Backend registry for the campaign runner: every entry exposes a database
/// engine through the one TransactionalKv adapter interface the harness
/// speaks, making the paper's black-box claim operational — the identical
/// scenario, tracer and live verifier run against MiniDB and against a real
/// SQLite file by flipping `--backend=`.
struct BackendOptions {
  /// Total harness sessions across all campaign nodes. Backends that bind
  /// clients to connections (SQLite: `client % connections`) size their
  /// pool from this so concurrent sessions never share a connection.
  uint32_t sessions = 8;
  /// Engine-level default isolation (MiniDB only; SQLite is always
  /// SERIALIZABLE — weaker levels there exist only as verification tags).
  IsolationLevel isolation = IsolationLevel::kSerializable;
  /// Engine-level per-session isolation overrides (MiniDB only), keyed by
  /// the campaign's global session index.
  std::unordered_map<ClientId, IsolationLevel> session_isolation;
  /// Engine-level fault plan (MiniDB only): corrupts one of the four
  /// mechanisms inside the engine. Real backends cannot be corrupted from
  /// outside — plant faults there with FaultyKv instead.
  FaultPlan engine_faults;
  uint64_t fault_seed = 1;
  /// SQLite knobs (ignored by MiniDB).
  std::string sqlite_path;                    ///< empty = temp file
  std::string sqlite_journal_mode = "rollback";  ///< "wal" | "rollback"
  int sqlite_busy_timeout_ms = 0;
  /// Optional metrics sink (adapter.sqlite.* counters).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Instantiates the backend registered under `name` ("minidb" always;
/// "sqlite" when the build found libsqlite3). Unknown names list the
/// available registry in the error.
StatusOr<std::unique_ptr<TransactionalKv>> MakeBackend(
    const std::string& name, const BackendOptions& options);

/// Registered backend names, in registry order.
std::vector<std::string> BackendNames();

/// Adapter-boundary fault injector: wraps any TransactionalKv and corrupts
/// what the *client* observes, without touching the engine — the only way
/// to plant a known anomaly into a real database the campaign cannot open
/// up. Reuses the FaultPlan knob names with client-side meanings:
///
///   stale_snapshot_prob   a Read returns the previous committed version
///                         instead of the latest (requires >= 2 commits)
///   hide_row_prob         a Read reports the row absent / a ReadRange
///                         silently drops one returned row (phantom bait)
///   lost_write_prob       a Write reports OK but never reaches the engine
///   resurrect_deleted_prob a Read that found no row returns the last
///                         committed value anyway
///
/// The wrapper tracks committed values itself (it cannot ask the engine
/// without disturbing it): per-transaction write buffers are promoted to a
/// bounded per-key history on Commit. Thread-safe like the engines it wraps.
class FaultyKv : public TransactionalKv {
 public:
  FaultyKv(std::unique_ptr<TransactionalKv> inner, const FaultPlan& plan,
           uint64_t seed);

  void Load(const std::vector<WriteAccess>& rows) override;
  TxnId Begin(ClientId client) override;
  StatusOr<Value> Read(TxnId txn, Key key) override;
  StatusOr<Value> ReadForUpdate(TxnId txn, Key key) override;
  StatusOr<std::vector<ReadAccess>> ReadRange(TxnId txn, Key first,
                                              uint32_t count) override;
  Status Write(TxnId txn, Key key, Value value) override;
  Status Delete(TxnId txn, Key key) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  /// Faults actually injected so far (a planted campaign asserts > 0).
  uint64_t injected_count() const;

  TransactionalKv* inner() { return inner_.get(); }

 private:
  std::unique_ptr<TransactionalKv> inner_;
  mutable std::mutex mu_;
  FaultInjector injector_;             // guarded by mu_
  Rng pick_rng_;                       // guarded by mu_ (victim selection)
  /// Last few committed values per key, oldest first (bounded).
  std::unordered_map<Key, std::vector<Value>> history_;
  /// Buffered writes of in-flight transactions (value or tombstone).
  std::unordered_map<TxnId, std::unordered_map<Key, Value>> txn_writes_;
};

}  // namespace campaign
}  // namespace leopard

#endif  // LEOPARD_CAMPAIGN_BACKEND_H_
