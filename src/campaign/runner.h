#ifndef LEOPARD_CAMPAIGN_RUNNER_H_
#define LEOPARD_CAMPAIGN_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "common/status.h"
#include "isolation/isolation.h"
#include "txn/kv_interface.h"
#include "verifier/bug.h"

namespace leopard {

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace campaign {

/// Campaign configuration: how many harness nodes drive the backend, and
/// how their traces are streamed live into a running leopard_serve.
struct CampaignOptions {
  /// Verifier endpoint ("host:port"); the campaign streams traces over the
  /// wire protocol as it executes — no trace files.
  std::string connect;
  /// Harness nodes, the paper's multi-server topology: each node is one
  /// thread with its own skewed clock and its own verifier connection.
  uint32_t nodes = 1;
  /// Concurrent sessions per node; each is one wire stream (one verifier
  /// client id) driven round-robin so transactions genuinely interleave.
  uint32_t sessions_per_node = 2;
  /// Committed transactions each session contributes before the campaign
  /// winds down.
  uint32_t txns_per_session = 50;
  /// Per-node clock skew, microseconds: node i reads its timestamps from a
  /// clock running i * clock_skew_us ahead of node 0 — the uncertainty the
  /// paper's interval model exists to absorb.
  uint32_t clock_skew_us = 0;
  /// Replication-style apply lag, microseconds: write and commit intervals
  /// are closed this much later than the operation returned, modeling a
  /// primary acking before the effect is visible everywhere. Injected at
  /// the trace boundary, so ts_aft stays a sound upper bound.
  uint32_t apply_lag_us = 0;
  uint64_t seed = 1;
  /// Wire batch size (traces per kBatch frame).
  size_t batch_traces = 64;
  uint64_t recv_timeout_ms = 30000;
  /// Per-session isolation-level *tags*, keyed by global session index
  /// (node * sessions_per_node + s): the level each stream declares in the
  /// v4 HELLO tail, gating which mechanisms the verifier checks. Leave
  /// empty for all-SERIALIZABLE.
  isolation::SessionIlMap il_map;
  /// Cap on retry spins for one operation before the runner force-aborts
  /// the transaction (lock waits that never resolve).
  uint32_t max_retry_spins = 10000;
  /// When true (default) each node ends with Finish(): close streams and
  /// block for the server's kBye, so every violation involving this node
  /// has arrived. False: close streams, wait for acks only.
  bool drain_bye = true;
  /// Optional metrics sink (campaign.* counters).
  obs::MetricsRegistry* metrics = nullptr;
};

/// What a campaign run produced. Violations are those the server streamed
/// back to this campaign's connections (server-side artifacts/diagnosis are
/// independent of this).
struct CampaignResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t traces_pushed = 0;
  uint64_t reconnects = 0;
  std::vector<BugDescriptor> violations;
};

/// Executes one scenario against one backend, streaming every trace live
/// into a leopard_serve instance. The runner owns clocks and timestamping:
/// ts_bef is taken (from the node's skewed clock) before an operation first
/// executes and survives retries, ts_aft after it returns (+ apply lag for
/// writes/commits) — the interval idiom the verifier's soundness rests on.
///
/// Scenario quirks honored here: think time (sleep between op steps) and
/// periodic disconnect + session resume (drains in-flight transactions,
/// waits for acks, drops the connection, reconnects with the v5 resume
/// handshake, and continues pushing above the server's resume floor).
class CampaignRunner {
 public:
  CampaignRunner(TransactionalKv* db, Scenario scenario,
                 CampaignOptions options);

  /// Runs the whole campaign (blocking). Returns the aggregate result, or
  /// the first node error (connection refused, session failed, ...).
  StatusOr<CampaignResult> Run();

 private:
  struct NodeOutcome;

  /// Body of one harness node: own connection, own skewed clock,
  /// sessions_per_node round-robin executors.
  void RunNode(uint32_t node, Timestamp run_start, NodeOutcome* out);

  TransactionalKv* db_;
  Scenario scenario_;
  CampaignOptions opts_;
};

}  // namespace campaign
}  // namespace leopard

#endif  // LEOPARD_CAMPAIGN_RUNNER_H_
