#ifndef LEOPARD_CAMPAIGN_SCENARIO_H_
#define LEOPARD_CAMPAIGN_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/workload.h"

namespace leopard {
namespace campaign {

/// Tuning knobs shared by the scenario library. Every scenario is an
/// anomaly-*hunting* shape: it concentrates the access patterns that make a
/// class of isolation bug observable, instead of spreading load uniformly.
struct ScenarioOptions {
  /// Size of the key space (phantom scenarios churn the odd half of it).
  uint32_t keys = 64;
  /// Width of predicate/range scans (phantom scenario).
  uint32_t scan_span = 16;
  /// Number of contended keys (hotrow scenario).
  uint32_t hot_keys = 2;
  /// Operations per transaction (longtxn scenario).
  uint32_t ops_per_txn = 8;
  /// Think time between the ops of one transaction, microseconds. 0 keeps
  /// the scenario's own default (only longtxn defaults to non-zero).
  uint32_t think_time_us = 0;
  /// Drop + resume the verifier connection every N committed transactions
  /// per node. 0 keeps the scenario default (only reconnect defaults on).
  uint32_t disconnect_every_txns = 0;
};

/// A named campaign scenario: the workload plus the execution quirks the
/// runner must honor (think time, mid-campaign disconnects).
struct Scenario {
  std::string name;
  std::shared_ptr<Workload> workload;
  uint32_t think_time_us = 0;
  uint32_t disconnect_every_txns = 0;
};

/// Instantiates the scenario registered under `name`:
///
///   phantom    predicate/range scans racing inserts and deletes of the
///              rows the predicate matches — ReadRange traces carry the
///              scanned interval, so a row wrongly missing from (or extra
///              in) the result surfaces as a CR/absent-row violation.
///   longtxn    long interactive transactions with think time between
///              statements: wide ts_bef/ts_aft intervals, the worst case
///              for the verifier's candidate pruning.
///   hotrow     read-modify-write churn on a few contended keys: lock
///              handoffs, FUW/lost-update bait.
///   reconnect  plain read/write mix, but the runner drops and resumes the
///              verifier connection mid-campaign (session-resume path).
StatusOr<Scenario> MakeScenario(const std::string& name,
                                const ScenarioOptions& options);

/// Registered scenario names, in registry order.
std::vector<std::string> ScenarioNames();

}  // namespace campaign
}  // namespace leopard

#endif  // LEOPARD_CAMPAIGN_SCENARIO_H_
