#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/rng.h"
#include "harness/executor.h"
#include "net/client.h"
#include "obs/registry.h"

namespace leopard {
namespace campaign {

namespace {

/// Attempts after a disconnect before giving up on resuming the parked
/// session (the server may not have noticed the EOF yet; each miss sleeps
/// 1ms, so this bounds the wait at ~200ms).
constexpr uint32_t kResumeAttempts = 200;

bool IsWriteClass(OpType op) {
  return op == OpType::kWrite || op == OpType::kCommit;
}

}  // namespace

struct CampaignRunner::NodeOutcome {
  Status status = Status::Ok();
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t traces_pushed = 0;
  uint64_t reconnects = 0;
  std::vector<BugDescriptor> violations;
};

CampaignRunner::CampaignRunner(TransactionalKv* db, Scenario scenario,
                               CampaignOptions options)
    : db_(db), scenario_(std::move(scenario)), opts_(std::move(options)) {}

StatusOr<CampaignResult> CampaignRunner::Run() {
  if (opts_.nodes == 0 || opts_.sessions_per_node == 0) {
    return Status::InvalidArgument("need at least one node and one session");
  }
  if (opts_.connect.empty()) {
    return Status::InvalidArgument("no verifier endpoint (--connect)");
  }

  std::vector<WriteAccess> rows = scenario_.workload->InitialRows();
  db_->Load(rows);

  MonotonicClock base_clock;
  const Timestamp run_start = base_clock.Now();

  std::vector<NodeOutcome> outcomes(opts_.nodes);
  std::vector<std::thread> threads;
  threads.reserve(opts_.nodes);
  for (uint32_t node = 0; node < opts_.nodes; ++node) {
    threads.emplace_back([this, node, run_start, &outcomes] {
      RunNode(node, run_start, &outcomes[node]);
    });
  }
  for (auto& t : threads) t.join();

  CampaignResult result;
  for (NodeOutcome& out : outcomes) {
    result.committed += out.committed;
    result.aborted += out.aborted;
    result.traces_pushed += out.traces_pushed;
    result.reconnects += out.reconnects;
    for (BugDescriptor& bug : out.violations) {
      result.violations.push_back(std::move(bug));
    }
  }
  for (const NodeOutcome& out : outcomes) {
    if (!out.status.ok()) return out.status;
  }

  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("campaign.txns_committed")->Inc(result.committed);
    opts_.metrics->counter("campaign.txns_aborted")->Inc(result.aborted);
    opts_.metrics->counter("campaign.traces_pushed")->Inc(result.traces_pushed);
    opts_.metrics->counter("campaign.reconnects")->Inc(result.reconnects);
    opts_.metrics->counter("campaign.violations")
        ->Inc(result.violations.size());
  }
  return result;
}

void CampaignRunner::RunNode(uint32_t node, Timestamp run_start,
                             NodeOutcome* out) {
  MonotonicClock base_clock;
  SkewedClock clock(&base_clock,
                    static_cast<int64_t>(node) * opts_.clock_skew_us * 1000);
  // Clock-uncertainty bound, TrueTime-style: node skews lie in
  // [0, (nodes-1) * clock_skew_us], so the true instant of a local reading
  // L is within [L - bound, L]. ts_bef is widened by the bound to keep the
  // interval covering the true operation time — skew then shows up to the
  // verifier as realistically *wider* intervals, never as unsound ones.
  const Timestamp skew_bound_ns = static_cast<Timestamp>(opts_.nodes - 1) *
                                  opts_.clock_skew_us * 1000;
  const int64_t apply_lag_ns = static_cast<int64_t>(opts_.apply_lag_us) * 1000;
  const uint32_t spn = opts_.sessions_per_node;
  const bool reconnects_on = scenario_.disconnect_every_txns > 0;

  net::VerifierClient::Options copts;
  copts.n_streams = spn;
  copts.batch_traces = opts_.batch_traces;
  copts.recv_timeout_ms = opts_.recv_timeout_ms;
  copts.resumable = reconnects_on;
  if (!opts_.il_map.empty()) {
    copts.stream_ils.resize(spn);
    for (uint32_t s = 0; s < spn; ++s) {
      copts.stream_ils[s] = opts_.il_map.Get(node * spn + s);
    }
  }
  auto connected = net::VerifierClient::Connect(opts_.connect, copts);
  if (!connected.ok()) {
    out->status = connected.status();
    return;
  }
  std::unique_ptr<net::VerifierClient> client = std::move(*connected);

  // Per-stream floor the next ts_bef must clear. Advanced by resumes and by
  // every pushed op: ts_bef must be *strictly* increasing within a stream,
  // because the verifier recovers program order from timestamps once the
  // pipeline merges streams — uncertainty widening would otherwise clamp a
  // run of early ops to one identical ts_bef and lose their order. Bumping
  // to last_bef + 1ns stays sound: the true op instants are themselves
  // strictly increasing, and ts_bef never overtakes its own op's start.
  std::vector<Timestamp> min_next_ts(spn, 0);
  // Traces pushed over the *current* connection (BatchAck counts restart
  // with each server-side session, so the ack watermark is per-connection).
  uint64_t conn_pushed = 0;

  // Node 0 feeds the initial load into the verifier: the bulk-load appears
  // as one committed write transaction strictly before every client op.
  if (node == 0) {
    std::vector<WriteAccess> rows = scenario_.workload->InitialRows();
    if (!rows.empty()) {
      Status s = client->Push(
          0, MakeWriteTrace(kLoadTxnId, 0,
                            TimeInterval(run_start - 4, run_start - 3),
                            std::move(rows)));
      if (s.ok()) {
        s = client->Push(0, MakeCommitTrace(
                                kLoadTxnId, 0,
                                TimeInterval(run_start - 2, run_start - 1)));
      }
      if (!s.ok()) {
        out->status = s;
        return;
      }
      out->traces_pushed += 2;
      conn_pushed += 2;
      // Stream 0 already carries the load commit at run_start - 1; the
      // uncertainty-widened ts_bef of its first op must not step back.
      min_next_ts[0] = std::max(min_next_ts[0], run_start - 1);
    }
  }

  // Round-robin session state.
  struct SessionState {
    std::unique_ptr<TxnExecutor> exec;
    Rng rng{1};
    uint32_t committed = 0;   // transactions finished (committed)
    Timestamp bef = 0;        // ts_bef of the op in flight (survives retries)
    uint32_t retries = 0;     // consecutive retry outcomes for that op
    bool op_armed = false;    // bef is valid (a retried op is pending)
  };
  std::vector<SessionState> sessions(spn);
  for (uint32_t s = 0; s < spn; ++s) {
    const ClientId global = node * spn + s;
    sessions[s].exec = std::make_unique<TxnExecutor>(global, db_);
    sessions[s].rng = Rng(opts_.seed * 0x100000001b3ULL + global + 1);
  }

  uint64_t node_committed_total = 0;
  uint64_t next_disconnect =
      reconnects_on ? scenario_.disconnect_every_txns : 0;
  bool draining_for_reconnect = false;

  auto push_trace = [&](uint32_t stream, Trace trace) -> Status {
    Status s = client->Push(stream, std::move(trace));
    if (s.ok()) {
      ++out->traces_pushed;
      ++conn_pushed;
    }
    return s;
  };

  // Drops the connection (after draining acks) and re-attaches to the
  // parked session via the v5 resume handshake.
  auto reconnect = [&]() -> Status {
    for (uint32_t s = 0; s < spn; ++s) {
      Status st = client->Flush(s);
      if (!st.ok()) return st;
    }
    Status st = client->WaitForAcked(conn_pushed);
    if (!st.ok()) return st;
    const uint32_t base = client->base_client();
    for (const BugDescriptor& bug : client->violations()) {
      out->violations.push_back(bug);
    }
    client.reset();  // abrupt close: the server parks the session

    net::VerifierClient::Options ropts = copts;
    ropts.resume = true;
    ropts.resume_base = base;
    for (uint32_t attempt = 0; attempt < kResumeAttempts; ++attempt) {
      auto again = net::VerifierClient::Connect(opts_.connect, ropts);
      if (again.ok() && (*again)->resumed()) {
        client = std::move(*again);
        const std::vector<Timestamp>& floors = client->resume_floors();
        for (uint32_t s = 0; s < spn && s < floors.size(); ++s) {
          min_next_ts[s] = std::max(min_next_ts[s], floors[s]);
        }
        conn_pushed = 0;
        ++out->reconnects;
        return Status::Ok();
      }
      // Not parked yet (the server has not seen our EOF) or transient
      // connect failure. A fresh fallback session, if the connect
      // succeeded, dies with `again` at the end of this iteration: it is
      // parked but never resumed, which the server tolerates.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Internal("could not resume session after disconnect");
  };

  const uint64_t target_total =
      static_cast<uint64_t>(spn) * opts_.txns_per_session;
  while (node_committed_total < target_total) {
    bool all_idle = true;
    bool progressed = false;
    for (uint32_t s = 0; s < spn; ++s) {
      SessionState& ss = sessions[s];
      if (ss.committed >= opts_.txns_per_session && !ss.exec->InTxn()) {
        continue;  // this session is done
      }
      if (!ss.exec->InTxn()) {
        if (draining_for_reconnect) continue;  // no new txns while draining
        ss.exec->BeginTxn(scenario_.workload->NextTransaction(ss.rng));
        ss.op_armed = false;
      }
      all_idle = false;
      if (scenario_.think_time_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(scenario_.think_time_us));
      }
      if (!ss.op_armed) {
        const Timestamp local = clock.Now();
        const Timestamp earliest =
            local > skew_bound_ns ? local - skew_bound_ns : 0;
        ss.bef = std::max(earliest, min_next_ts[s]);
        ss.retries = 0;
        ss.op_armed = true;
      }
      OpOutcome outcome = ss.exec->ExecuteNextOp();
      if (outcome.retry) {
        // Lock wait: keep ts_bef, let the other sessions run, retry on the
        // next round-robin pass. After too many spins force-abort (the
        // holder may live on this very thread).
        if (++ss.retries > opts_.max_retry_spins) {
          outcome = ss.exec->AbortTxn();
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      progressed = true;
      ss.op_armed = false;
      Timestamp aft = clock.Now();
      if (apply_lag_ns > 0 && IsWriteClass(outcome.trace.op)) {
        aft += static_cast<Timestamp>(apply_lag_ns);
      }
      outcome.trace.interval = TimeInterval(ss.bef, std::max(ss.bef, aft));
      min_next_ts[s] = std::max(min_next_ts[s], ss.bef + 1);
      Status st = push_trace(s, std::move(outcome.trace));
      if (!st.ok()) {
        out->status = st;
        return;
      }
      if (outcome.txn_finished) {
        if (outcome.committed) {
          ++ss.committed;
          ++node_committed_total;
          ++out->committed;
        } else {
          ++out->aborted;
        }
      }
    }
    if (!progressed && !all_idle && !draining_for_reconnect) {
      // Every live session is stuck in a lock wait this pass; yield so
      // other nodes (threads) can release what we are waiting on.
      std::this_thread::yield();
    }
    if (reconnects_on && node_committed_total >= next_disconnect &&
        node_committed_total < target_total) {
      if (!draining_for_reconnect) {
        draining_for_reconnect = true;  // finish in-flight txns first
      }
      if (all_idle) {
        Status st = reconnect();
        if (!st.ok()) {
          out->status = st;
          return;
        }
        draining_for_reconnect = false;
        next_disconnect += scenario_.disconnect_every_txns;
      }
    }
  }

  if (opts_.drain_bye) {
    auto bye = client->Finish();
    if (!bye.ok()) {
      out->status = bye.status();
      return;
    }
  } else {
    for (uint32_t s = 0; s < spn; ++s) {
      Status st = client->CloseStream(s);
      if (!st.ok()) {
        out->status = st;
        return;
      }
    }
    Status st = client->WaitForAcked(conn_pushed);
    if (!st.ok()) {
      out->status = st;
      return;
    }
  }
  for (const BugDescriptor& bug : client->violations()) {
    out->violations.push_back(bug);
  }
}

}  // namespace campaign
}  // namespace leopard
